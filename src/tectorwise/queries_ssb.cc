#include <algorithm>
#include <mutex>
#include <tuple>

#include "runtime/types.h"
#include "runtime/worker_pool.h"
#include "tectorwise/hash_group.h"
#include "tectorwise/hash_join.h"
#include "tectorwise/queries.h"
#include "tectorwise/steps.h"

// Star Schema Benchmark plans for the Tectorwise engine (paper §4.4):
// lineorder probes filtered dimension hash tables — the workload that made
// the SSB results "quite similar to TPC-H Q3 and Q9".

namespace vcq::tectorwise {

using runtime::Char;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Relation;
using runtime::ResultBuilder;

namespace {

ExecContext MakeContext(const QueryOptions& opt) {
  ExecContext ctx;
  ctx.vector_size = opt.vector_size;
  ctx.use_simd = opt.simd;
  ctx.compaction = ToPolicy(opt.compaction);
  ctx.compaction_threshold = opt.compaction_threshold;
  return ctx;
}

}  // namespace

// ---------------------------------------------------------------------------
// Q1.1: date join + tight selections, single aggregate
// ---------------------------------------------------------------------------
QueryResult RunSsbQ11(const Database& db, const QueryOptions& opt) {
  const Relation& lineorder = db["lineorder"];
  const Relation& date = db["date"];
  const ExecContext ctx = MakeContext(opt);

  Scan::Shared scan_lo(lineorder.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_d(date.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_date(opt.threads);

  int64_t total = 0;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    (void)wid;
    auto dscan = std::make_unique<Scan>(&scan_d, &date, ctx.vector_size);
    Slot* d_datekey = dscan->AddColumn<int32_t>("d_datekey");
    Slot* d_year = dscan->AddColumn<int32_t>("d_year");
    auto dsel = std::make_unique<Select>(std::move(dscan), ctx);
    dsel->AddStep(MakeSelCmp<int32_t>(ctx, d_year, CmpOp::kEq, 1993));
    CompactColumn<int32_t>(ctx, dsel->compactor(), d_datekey);

    auto loscan =
        std::make_unique<Scan>(&scan_lo, &lineorder, ctx.vector_size);
    Slot* lo_orderdate = loscan->AddColumn<int32_t>("lo_orderdate");
    Slot* lo_discount = loscan->AddColumn<int64_t>("lo_discount");
    Slot* lo_quantity = loscan->AddColumn<int64_t>("lo_quantity");
    Slot* lo_extprice = loscan->AddColumn<int64_t>("lo_extendedprice");
    auto losel = std::make_unique<Select>(std::move(loscan), ctx);
    losel->AddStep(MakeSelBetween<int64_t>(ctx, lo_discount, 1, 3));
    losel->AddStep(MakeSelCmp<int64_t>(ctx, lo_quantity, CmpOp::kLess, 25));
    CompactColumn<int32_t>(ctx, losel->compactor(), lo_orderdate);
    CompactColumn<int64_t>(ctx, losel->compactor(), lo_discount);
    CompactColumn<int64_t>(ctx, losel->compactor(), lo_extprice);

    auto hj = std::make_unique<HashJoin>(&join_date, std::move(dsel),
                                         std::move(losel), ctx);
    const size_t f_datekey = hj->AddBuildField<int32_t>(d_datekey);
    hj->SetBuildHash(MakeHash<int32_t>(ctx, d_datekey));
    hj->SetProbeHash(MakeHash<int32_t>(ctx, lo_orderdate));
    hj->AddKeyCompare<int32_t>(lo_orderdate, f_datekey);
    Slot* j_extprice = hj->AddProbeOutput<int64_t>(lo_extprice);
    Slot* j_discount = hj->AddProbeOutput<int64_t>(lo_discount);

    auto map = std::make_unique<Map>(std::move(hj), ctx.vector_size);
    Slot* revenue = map->AddOutput<int64_t>();  // scale 4
    map->AddStep(MakeMapMul<int64_t>(j_extprice, j_discount,
                                     map->OutputData<int64_t>(revenue)));

    auto agg = std::make_unique<FixedAggregation>(std::move(map));
    Slot* sum = agg->AddSumI64(revenue);
    size_t n;
    while ((n = agg->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      total += *Get<int64_t>(sum);
    }
    roots[wid] = std::move(agg);
  });
  roots.clear();

  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q2.1: part + supplier + date joins, group by (year, brand)
// ---------------------------------------------------------------------------
QueryResult RunSsbQ21(const Database& db, const QueryOptions& opt) {
  const Relation& lineorder = db["lineorder"];
  const Relation& date = db["date"];
  const Relation& part = db["part"];
  const Relation& supplier = db["supplier"];
  const ExecContext ctx = MakeContext(opt);

  Scan::Shared scan_lo(lineorder.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_d(date.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_p(part.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_s(supplier.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_part(opt.threads);
  HashJoin::Shared join_supp(opt.threads);
  HashJoin::Shared join_date(opt.threads);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    int32_t year;
    Char<9> brand;
    int64_t revenue;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    auto pscan = std::make_unique<Scan>(&scan_p, &part, ctx.vector_size);
    Slot* p_partkey = pscan->AddColumn<int32_t>("p_partkey");
    Slot* p_category = pscan->AddColumn<Char<7>>("p_category");
    Slot* p_brand1 = pscan->AddColumn<Char<9>>("p_brand1");
    auto psel = std::make_unique<Select>(std::move(pscan), ctx);
    psel->AddStep(MakeSelCmp<Char<7>>(ctx, p_category, CmpOp::kEq,
                                      Char<7>::From("MFGR#12")));
    CompactColumn<int32_t>(ctx, psel->compactor(), p_partkey);
    CompactColumn<Char<9>>(ctx, psel->compactor(), p_brand1);

    auto sscan = std::make_unique<Scan>(&scan_s, &supplier, ctx.vector_size);
    Slot* s_suppkey = sscan->AddColumn<int32_t>("s_suppkey");
    Slot* s_region = sscan->AddColumn<Char<12>>("s_region");
    auto ssel = std::make_unique<Select>(std::move(sscan), ctx);
    ssel->AddStep(MakeSelCmp<Char<12>>(ctx, s_region, CmpOp::kEq,
                                       Char<12>::From("AMERICA")));
    CompactColumn<int32_t>(ctx, ssel->compactor(), s_suppkey);

    auto dscan = std::make_unique<Scan>(&scan_d, &date, ctx.vector_size);
    Slot* d_datekey = dscan->AddColumn<int32_t>("d_datekey");
    Slot* d_year = dscan->AddColumn<int32_t>("d_year");

    auto loscan =
        std::make_unique<Scan>(&scan_lo, &lineorder, ctx.vector_size);
    Slot* lo_partkey = loscan->AddColumn<int32_t>("lo_partkey");
    Slot* lo_suppkey = loscan->AddColumn<int32_t>("lo_suppkey");
    Slot* lo_orderdate = loscan->AddColumn<int32_t>("lo_orderdate");
    Slot* lo_revenue = loscan->AddColumn<int64_t>("lo_revenue");

    auto hj_p = std::make_unique<HashJoin>(&join_part, std::move(psel),
                                           std::move(loscan), ctx);
    const size_t f_partkey = hj_p->AddBuildField<int32_t>(p_partkey);
    const size_t f_brand = hj_p->AddBuildField<Char<9>>(p_brand1);
    hj_p->SetBuildHash(MakeHash<int32_t>(ctx, p_partkey));
    hj_p->SetProbeHash(MakeHash<int32_t>(ctx, lo_partkey));
    hj_p->AddKeyCompare<int32_t>(lo_partkey, f_partkey);
    Slot* jp_brand = hj_p->AddBuildOutput<Char<9>>(f_brand);
    Slot* jp_suppkey = hj_p->AddProbeOutput<int32_t>(lo_suppkey);
    Slot* jp_orderdate = hj_p->AddProbeOutput<int32_t>(lo_orderdate);
    Slot* jp_revenue = hj_p->AddProbeOutput<int64_t>(lo_revenue);

    auto hj_s = std::make_unique<HashJoin>(&join_supp, std::move(ssel),
                                           std::move(hj_p), ctx);
    const size_t f_suppkey = hj_s->AddBuildField<int32_t>(s_suppkey);
    hj_s->SetBuildHash(MakeHash<int32_t>(ctx, s_suppkey));
    hj_s->SetProbeHash(MakeHash<int32_t>(ctx, jp_suppkey));
    hj_s->AddKeyCompare<int32_t>(jp_suppkey, f_suppkey);
    Slot* js_brand = hj_s->AddProbeOutput<Char<9>>(jp_brand);
    Slot* js_orderdate = hj_s->AddProbeOutput<int32_t>(jp_orderdate);
    Slot* js_revenue = hj_s->AddProbeOutput<int64_t>(jp_revenue);

    auto hj_d = std::make_unique<HashJoin>(&join_date, std::move(dscan),
                                           std::move(hj_s), ctx);
    const size_t f_datekey = hj_d->AddBuildField<int32_t>(d_datekey);
    const size_t f_year = hj_d->AddBuildField<int32_t>(d_year);
    hj_d->SetBuildHash(MakeHash<int32_t>(ctx, d_datekey));
    hj_d->SetProbeHash(MakeHash<int32_t>(ctx, js_orderdate));
    hj_d->AddKeyCompare<int32_t>(js_orderdate, f_datekey);
    Slot* jd_year = hj_d->AddBuildOutput<int32_t>(f_year);
    Slot* jd_brand = hj_d->AddProbeOutput<Char<9>>(js_brand);
    Slot* jd_revenue = hj_d->AddProbeOutput<int64_t>(js_revenue);

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(hj_d), ctx);
    const size_t k_year = group->AddKey<int32_t>(jd_year);
    const size_t k_brand = group->AddKey<Char<9>>(jd_brand);
    const size_t a_rev = group->AddSumAgg(jd_revenue);
    Slot* g_year = group->AddOutput<int32_t>(k_year);
    Slot* g_brand = group->AddOutput<Char<9>>(k_brand);
    Slot* g_rev = group->AddOutput<int64_t>(a_rev);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<int32_t>(g_year)[k], Get<Char<9>>(g_brand)[k],
                           Get<int64_t>(g_rev)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    return a.brand < b.brand;
  });
  ResultBuilder rb({"d_year", "p_brand1", "revenue"});
  for (const Row& r : rows)
    rb.BeginRow().Int(r.year).Str(r.brand.View()).Numeric(r.revenue, 2);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q3.1: customer + supplier + date joins, group by (c_nation, s_nation, year)
// ---------------------------------------------------------------------------
QueryResult RunSsbQ31(const Database& db, const QueryOptions& opt) {
  const Relation& lineorder = db["lineorder"];
  const Relation& date = db["date"];
  const Relation& customer = db["customer"];
  const Relation& supplier = db["supplier"];
  const ExecContext ctx = MakeContext(opt);
  const Char<12> asia = Char<12>::From("ASIA");

  Scan::Shared scan_lo(lineorder.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_d(date.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_c(customer.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_s(supplier.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_cust(opt.threads);
  HashJoin::Shared join_supp(opt.threads);
  HashJoin::Shared join_date(opt.threads);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    Char<15> c_nation, s_nation;
    int32_t year;
    int64_t revenue;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    auto cscan = std::make_unique<Scan>(&scan_c, &customer, ctx.vector_size);
    Slot* c_custkey = cscan->AddColumn<int32_t>("c_custkey");
    Slot* c_nation = cscan->AddColumn<Char<15>>("c_nation");
    Slot* c_region = cscan->AddColumn<Char<12>>("c_region");
    auto csel = std::make_unique<Select>(std::move(cscan), ctx);
    csel->AddStep(MakeSelCmp<Char<12>>(ctx, c_region, CmpOp::kEq, asia));
    CompactColumn<int32_t>(ctx, csel->compactor(), c_custkey);
    CompactColumn<Char<15>>(ctx, csel->compactor(), c_nation);

    auto sscan = std::make_unique<Scan>(&scan_s, &supplier, ctx.vector_size);
    Slot* s_suppkey = sscan->AddColumn<int32_t>("s_suppkey");
    Slot* s_nation = sscan->AddColumn<Char<15>>("s_nation");
    Slot* s_region = sscan->AddColumn<Char<12>>("s_region");
    auto ssel = std::make_unique<Select>(std::move(sscan), ctx);
    ssel->AddStep(MakeSelCmp<Char<12>>(ctx, s_region, CmpOp::kEq, asia));
    CompactColumn<int32_t>(ctx, ssel->compactor(), s_suppkey);
    CompactColumn<Char<15>>(ctx, ssel->compactor(), s_nation);

    auto dscan = std::make_unique<Scan>(&scan_d, &date, ctx.vector_size);
    Slot* d_datekey = dscan->AddColumn<int32_t>("d_datekey");
    Slot* d_year = dscan->AddColumn<int32_t>("d_year");
    auto dsel = std::make_unique<Select>(std::move(dscan), ctx);
    dsel->AddStep(MakeSelBetween<int32_t>(ctx, d_year, 1992, 1997));
    CompactColumn<int32_t>(ctx, dsel->compactor(), d_datekey);
    CompactColumn<int32_t>(ctx, dsel->compactor(), d_year);

    auto loscan =
        std::make_unique<Scan>(&scan_lo, &lineorder, ctx.vector_size);
    Slot* lo_custkey = loscan->AddColumn<int32_t>("lo_custkey");
    Slot* lo_suppkey = loscan->AddColumn<int32_t>("lo_suppkey");
    Slot* lo_orderdate = loscan->AddColumn<int32_t>("lo_orderdate");
    Slot* lo_revenue = loscan->AddColumn<int64_t>("lo_revenue");

    auto hj_c = std::make_unique<HashJoin>(&join_cust, std::move(csel),
                                           std::move(loscan), ctx);
    const size_t f_custkey = hj_c->AddBuildField<int32_t>(c_custkey);
    const size_t f_cnation = hj_c->AddBuildField<Char<15>>(c_nation);
    hj_c->SetBuildHash(MakeHash<int32_t>(ctx, c_custkey));
    hj_c->SetProbeHash(MakeHash<int32_t>(ctx, lo_custkey));
    hj_c->AddKeyCompare<int32_t>(lo_custkey, f_custkey);
    Slot* jc_cnation = hj_c->AddBuildOutput<Char<15>>(f_cnation);
    Slot* jc_suppkey = hj_c->AddProbeOutput<int32_t>(lo_suppkey);
    Slot* jc_orderdate = hj_c->AddProbeOutput<int32_t>(lo_orderdate);
    Slot* jc_revenue = hj_c->AddProbeOutput<int64_t>(lo_revenue);

    auto hj_s = std::make_unique<HashJoin>(&join_supp, std::move(ssel),
                                           std::move(hj_c), ctx);
    const size_t f_suppkey = hj_s->AddBuildField<int32_t>(s_suppkey);
    const size_t f_snation = hj_s->AddBuildField<Char<15>>(s_nation);
    hj_s->SetBuildHash(MakeHash<int32_t>(ctx, s_suppkey));
    hj_s->SetProbeHash(MakeHash<int32_t>(ctx, jc_suppkey));
    hj_s->AddKeyCompare<int32_t>(jc_suppkey, f_suppkey);
    Slot* js_snation = hj_s->AddBuildOutput<Char<15>>(f_snation);
    Slot* js_cnation = hj_s->AddProbeOutput<Char<15>>(jc_cnation);
    Slot* js_orderdate = hj_s->AddProbeOutput<int32_t>(jc_orderdate);
    Slot* js_revenue = hj_s->AddProbeOutput<int64_t>(jc_revenue);

    auto hj_d = std::make_unique<HashJoin>(&join_date, std::move(dsel),
                                           std::move(hj_s), ctx);
    const size_t f_datekey = hj_d->AddBuildField<int32_t>(d_datekey);
    const size_t f_year = hj_d->AddBuildField<int32_t>(d_year);
    hj_d->SetBuildHash(MakeHash<int32_t>(ctx, d_datekey));
    hj_d->SetProbeHash(MakeHash<int32_t>(ctx, js_orderdate));
    hj_d->AddKeyCompare<int32_t>(js_orderdate, f_datekey);
    Slot* jd_year = hj_d->AddBuildOutput<int32_t>(f_year);
    Slot* jd_cnation = hj_d->AddProbeOutput<Char<15>>(js_cnation);
    Slot* jd_snation = hj_d->AddProbeOutput<Char<15>>(js_snation);
    Slot* jd_revenue = hj_d->AddProbeOutput<int64_t>(js_revenue);

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(hj_d), ctx);
    const size_t k_cnation = group->AddKey<Char<15>>(jd_cnation);
    const size_t k_snation = group->AddKey<Char<15>>(jd_snation);
    const size_t k_year = group->AddKey<int32_t>(jd_year);
    const size_t a_rev = group->AddSumAgg(jd_revenue);
    Slot* g_cnation = group->AddOutput<Char<15>>(k_cnation);
    Slot* g_snation = group->AddOutput<Char<15>>(k_snation);
    Slot* g_year = group->AddOutput<int32_t>(k_year);
    Slot* g_rev = group->AddOutput<int64_t>(a_rev);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<Char<15>>(g_cnation)[k],
                           Get<Char<15>>(g_snation)[k],
                           Get<int32_t>(g_year)[k], Get<int64_t>(g_rev)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return std::tie(a.c_nation, a.s_nation) < std::tie(b.c_nation, b.s_nation);
  });
  ResultBuilder rb({"c_nation", "s_nation", "d_year", "revenue"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(r.c_nation.View())
        .Str(r.s_nation.View())
        .Int(r.year)
        .Numeric(r.revenue, 2);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q4.1: four-dimension join, group by (year, c_nation), profit
// ---------------------------------------------------------------------------
QueryResult RunSsbQ41(const Database& db, const QueryOptions& opt) {
  const Relation& lineorder = db["lineorder"];
  const Relation& date = db["date"];
  const Relation& customer = db["customer"];
  const Relation& supplier = db["supplier"];
  const Relation& part = db["part"];
  const ExecContext ctx = MakeContext(opt);
  const Char<12> america = Char<12>::From("AMERICA");

  Scan::Shared scan_lo(lineorder.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_d(date.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_c(customer.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_s(supplier.tuple_count(), opt.morsel_grain);
  Scan::Shared scan_p(part.tuple_count(), opt.morsel_grain);
  HashJoin::Shared join_cust(opt.threads);
  HashJoin::Shared join_supp(opt.threads);
  HashJoin::Shared join_part(opt.threads);
  HashJoin::Shared join_date(opt.threads);
  HashGroup::Shared group_shared(opt.threads);

  struct Row {
    int32_t year;
    Char<15> c_nation;
    int64_t profit;
  };
  std::vector<Row> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<Operator>> roots(opt.threads);

  runtime::WorkerPool::Global().Run(opt.threads, [&](size_t wid) {
    auto cscan = std::make_unique<Scan>(&scan_c, &customer, ctx.vector_size);
    Slot* c_custkey = cscan->AddColumn<int32_t>("c_custkey");
    Slot* c_nation = cscan->AddColumn<Char<15>>("c_nation");
    Slot* c_region = cscan->AddColumn<Char<12>>("c_region");
    auto csel = std::make_unique<Select>(std::move(cscan), ctx);
    csel->AddStep(MakeSelCmp<Char<12>>(ctx, c_region, CmpOp::kEq, america));
    CompactColumn<int32_t>(ctx, csel->compactor(), c_custkey);
    CompactColumn<Char<15>>(ctx, csel->compactor(), c_nation);

    auto sscan = std::make_unique<Scan>(&scan_s, &supplier, ctx.vector_size);
    Slot* s_suppkey = sscan->AddColumn<int32_t>("s_suppkey");
    Slot* s_region = sscan->AddColumn<Char<12>>("s_region");
    auto ssel = std::make_unique<Select>(std::move(sscan), ctx);
    ssel->AddStep(MakeSelCmp<Char<12>>(ctx, s_region, CmpOp::kEq, america));
    CompactColumn<int32_t>(ctx, ssel->compactor(), s_suppkey);

    auto pscan = std::make_unique<Scan>(&scan_p, &part, ctx.vector_size);
    Slot* p_partkey = pscan->AddColumn<int32_t>("p_partkey");
    Slot* p_mfgr = pscan->AddColumn<Char<6>>("p_mfgr");
    auto psel = std::make_unique<Select>(std::move(pscan), ctx);
    psel->AddStep(MakeSelEqOr2<Char<6>>(p_mfgr, Char<6>::From("MFGR#1"),
                                        Char<6>::From("MFGR#2")));
    CompactColumn<int32_t>(ctx, psel->compactor(), p_partkey);

    auto dscan = std::make_unique<Scan>(&scan_d, &date, ctx.vector_size);
    Slot* d_datekey = dscan->AddColumn<int32_t>("d_datekey");
    Slot* d_year = dscan->AddColumn<int32_t>("d_year");

    auto loscan =
        std::make_unique<Scan>(&scan_lo, &lineorder, ctx.vector_size);
    Slot* lo_custkey = loscan->AddColumn<int32_t>("lo_custkey");
    Slot* lo_suppkey = loscan->AddColumn<int32_t>("lo_suppkey");
    Slot* lo_partkey = loscan->AddColumn<int32_t>("lo_partkey");
    Slot* lo_orderdate = loscan->AddColumn<int32_t>("lo_orderdate");
    Slot* lo_revenue = loscan->AddColumn<int64_t>("lo_revenue");
    Slot* lo_supplycost = loscan->AddColumn<int64_t>("lo_supplycost");

    auto hj_c = std::make_unique<HashJoin>(&join_cust, std::move(csel),
                                           std::move(loscan), ctx);
    const size_t f_custkey = hj_c->AddBuildField<int32_t>(c_custkey);
    const size_t f_cnation = hj_c->AddBuildField<Char<15>>(c_nation);
    hj_c->SetBuildHash(MakeHash<int32_t>(ctx, c_custkey));
    hj_c->SetProbeHash(MakeHash<int32_t>(ctx, lo_custkey));
    hj_c->AddKeyCompare<int32_t>(lo_custkey, f_custkey);
    Slot* jc_cnation = hj_c->AddBuildOutput<Char<15>>(f_cnation);
    Slot* jc_suppkey = hj_c->AddProbeOutput<int32_t>(lo_suppkey);
    Slot* jc_partkey = hj_c->AddProbeOutput<int32_t>(lo_partkey);
    Slot* jc_orderdate = hj_c->AddProbeOutput<int32_t>(lo_orderdate);
    Slot* jc_revenue = hj_c->AddProbeOutput<int64_t>(lo_revenue);
    Slot* jc_supplycost = hj_c->AddProbeOutput<int64_t>(lo_supplycost);

    auto hj_s = std::make_unique<HashJoin>(&join_supp, std::move(ssel),
                                           std::move(hj_c), ctx);
    const size_t f_suppkey = hj_s->AddBuildField<int32_t>(s_suppkey);
    hj_s->SetBuildHash(MakeHash<int32_t>(ctx, s_suppkey));
    hj_s->SetProbeHash(MakeHash<int32_t>(ctx, jc_suppkey));
    hj_s->AddKeyCompare<int32_t>(jc_suppkey, f_suppkey);
    Slot* js_cnation = hj_s->AddProbeOutput<Char<15>>(jc_cnation);
    Slot* js_partkey = hj_s->AddProbeOutput<int32_t>(jc_partkey);
    Slot* js_orderdate = hj_s->AddProbeOutput<int32_t>(jc_orderdate);
    Slot* js_revenue = hj_s->AddProbeOutput<int64_t>(jc_revenue);
    Slot* js_supplycost = hj_s->AddProbeOutput<int64_t>(jc_supplycost);

    auto hj_p = std::make_unique<HashJoin>(&join_part, std::move(psel),
                                           std::move(hj_s), ctx);
    const size_t f_partkey = hj_p->AddBuildField<int32_t>(p_partkey);
    hj_p->SetBuildHash(MakeHash<int32_t>(ctx, p_partkey));
    hj_p->SetProbeHash(MakeHash<int32_t>(ctx, js_partkey));
    hj_p->AddKeyCompare<int32_t>(js_partkey, f_partkey);
    Slot* jp_cnation = hj_p->AddProbeOutput<Char<15>>(js_cnation);
    Slot* jp_orderdate = hj_p->AddProbeOutput<int32_t>(js_orderdate);
    Slot* jp_revenue = hj_p->AddProbeOutput<int64_t>(js_revenue);
    Slot* jp_supplycost = hj_p->AddProbeOutput<int64_t>(js_supplycost);

    auto hj_d = std::make_unique<HashJoin>(&join_date, std::move(dscan),
                                           std::move(hj_p), ctx);
    const size_t f_datekey = hj_d->AddBuildField<int32_t>(d_datekey);
    const size_t f_year = hj_d->AddBuildField<int32_t>(d_year);
    hj_d->SetBuildHash(MakeHash<int32_t>(ctx, d_datekey));
    hj_d->SetProbeHash(MakeHash<int32_t>(ctx, jp_orderdate));
    hj_d->AddKeyCompare<int32_t>(jp_orderdate, f_datekey);
    Slot* jd_year = hj_d->AddBuildOutput<int32_t>(f_year);
    Slot* jd_cnation = hj_d->AddProbeOutput<Char<15>>(jp_cnation);
    Slot* jd_revenue = hj_d->AddProbeOutput<int64_t>(jp_revenue);
    Slot* jd_supplycost = hj_d->AddProbeOutput<int64_t>(jp_supplycost);

    auto map = std::make_unique<Map>(std::move(hj_d), ctx.vector_size);
    Slot* profit = map->AddOutput<int64_t>();  // scale 2
    map->AddStep(MakeMapSub<int64_t>(jd_revenue, jd_supplycost,
                                     map->OutputData<int64_t>(profit)));

    auto group = std::make_unique<HashGroup>(&group_shared, wid, opt.threads,
                                             std::move(map), ctx);
    const size_t k_year = group->AddKey<int32_t>(jd_year);
    const size_t k_cnation = group->AddKey<Char<15>>(jd_cnation);
    const size_t a_profit = group->AddSumAgg(profit);
    Slot* g_year = group->AddOutput<int32_t>(k_year);
    Slot* g_cnation = group->AddOutput<Char<15>>(k_cnation);
    Slot* g_profit = group->AddOutput<int64_t>(a_profit);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(Row{Get<int32_t>(g_year)[k],
                           Get<Char<15>>(g_cnation)[k],
                           Get<int64_t>(g_profit)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    return a.c_nation < b.c_nation;
  });
  ResultBuilder rb({"d_year", "c_nation", "profit"});
  for (const Row& r : rows)
    rb.BeginRow().Int(r.year).Str(r.c_nation.View()).Numeric(r.profit, 2);
  return rb.Finish();
}

}  // namespace vcq::tectorwise
