#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/types.h"
#include "tectorwise/plan.h"
#include "tectorwise/queries.h"

// Star Schema Benchmark plans for the Tectorwise engine (paper §4.4):
// lineorder probes filtered dimension hash tables — the workload that made
// the SSB results "quite similar to TPC-H Q3 and Q9". Described with the
// PlanBuilder (plan.h); compaction registrations are derived from slot
// usage.

namespace vcq::tectorwise {

using runtime::Char;
using runtime::Database;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResultBuilder;

// ---------------------------------------------------------------------------
// Q1.1: date join + tight selections, single aggregate
// ---------------------------------------------------------------------------

namespace {

struct SsbQ11Plan {
  Plan plan;
  ColumnRef revenue;
};

SsbQ11Plan MakeSsbQ11(const Database& db) {
  PlanBuilder pb("SSB-Q1.1");

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");
  auto& dsel = pb.Select(dscan);
  dsel.Cmp<int32_t>(d_year, CmpOp::kEq, 1993);

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_discount = loscan.Col<int64_t>("lo_discount");
  const ColumnRef lo_quantity = loscan.Col<int64_t>("lo_quantity");
  const ColumnRef lo_extprice = loscan.Col<int64_t>("lo_extendedprice");
  auto& losel = pb.Select(loscan);
  losel.Between<int64_t>(lo_discount, 1, 3);
  losel.Cmp<int64_t>(lo_quantity, CmpOp::kLess, 25);

  auto& hj = pb.HashJoin(dsel, losel);
  hj.Key<int32_t>(lo_orderdate, d_datekey);
  const ColumnRef j_extprice = hj.Probe<int64_t>(lo_extprice);
  const ColumnRef j_discount = hj.Probe<int64_t>(lo_discount);

  auto& map = pb.Map(hj);
  const ColumnRef revenue =
      map.Mul<int64_t>(j_extprice, j_discount, "revenue");  // scale 4

  auto& agg = pb.FixedAgg(map);
  const ColumnRef total = agg.Sum(revenue, "revenue");
  return SsbQ11Plan{pb.Build(agg, {total}), total};
}

}  // namespace

QueryResult RunSsbQ11(const Database& db, const QueryOptions& opt) {
  const SsbQ11Plan q = MakeSsbQ11(db);
  int64_t total = 0;
  q.plan.Run(opt, [&](const Plan::Batch& b) {
    total += b.Column<int64_t>(q.revenue)[0];
  });
  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q2.1: part + supplier + date joins, group by (year, brand)
// ---------------------------------------------------------------------------

namespace {

struct SsbQ21Plan {
  Plan plan;
  ColumnRef year, brand, revenue;
};

SsbQ21Plan MakeSsbQ21(const Database& db) {
  PlanBuilder pb("SSB-Q2.1");

  auto& pscan = pb.Scan(db["part"], "part");
  const ColumnRef p_partkey = pscan.Col<int32_t>("p_partkey");
  const ColumnRef p_category = pscan.Col<Char<7>>("p_category");
  const ColumnRef p_brand1 = pscan.Col<Char<9>>("p_brand1");
  auto& psel = pb.Select(pscan);
  psel.Cmp<Char<7>>(p_category, CmpOp::kEq, Char<7>::From("MFGR#12"));

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.Cmp<Char<12>>(s_region, CmpOp::kEq, Char<12>::From("AMERICA"));

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_partkey = loscan.Col<int32_t>("lo_partkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");

  auto& hj_p = pb.HashJoin(psel, loscan);
  hj_p.Key<int32_t>(lo_partkey, p_partkey);
  const ColumnRef jp_brand = hj_p.Build<Char<9>>(p_brand1);
  const ColumnRef jp_suppkey = hj_p.Probe<int32_t>(lo_suppkey);
  const ColumnRef jp_orderdate = hj_p.Probe<int32_t>(lo_orderdate);
  const ColumnRef jp_revenue = hj_p.Probe<int64_t>(lo_revenue);

  auto& hj_s = pb.HashJoin(ssel, hj_p);
  hj_s.Key<int32_t>(jp_suppkey, s_suppkey);
  const ColumnRef js_brand = hj_s.Probe<Char<9>>(jp_brand);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jp_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jp_revenue);

  auto& hj_d = pb.HashJoin(dscan, hj_s);
  hj_d.Key<int32_t>(js_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_brand = hj_d.Probe<Char<9>>(js_brand);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(js_revenue);

  auto& group = pb.HashGroup(hj_d);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_brand = group.Key<Char<9>>(jd_brand);
  const ColumnRef g_rev = group.Sum(jd_revenue);

  Plan plan = pb.Build(group, {g_year, g_brand, g_rev});
  return SsbQ21Plan{std::move(plan), g_year, g_brand, g_rev};
}

}  // namespace

QueryResult RunSsbQ21(const Database& db, const QueryOptions& opt) {
  const SsbQ21Plan q = MakeSsbQ21(db);
  struct Row {
    int32_t year;
    Char<9> brand;
    int64_t revenue;
  };
  std::vector<Row> rows;
  q.plan.Run(opt, [&](const Plan::Batch& b) {
    for (size_t k = 0; k < b.size(); ++k) {
      rows.push_back(Row{b.Column<int32_t>(q.year)[k],
                         b.Column<Char<9>>(q.brand)[k],
                         b.Column<int64_t>(q.revenue)[k]});
    }
  });

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    return a.brand < b.brand;
  });
  ResultBuilder rb({"d_year", "p_brand1", "revenue"});
  for (const Row& r : rows)
    rb.BeginRow().Int(r.year).Str(r.brand.View()).Numeric(r.revenue, 2);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q3.1: customer + supplier + date joins, group by (c_nation, s_nation, year)
// ---------------------------------------------------------------------------

namespace {

struct SsbQ31Plan {
  Plan plan;
  ColumnRef c_nation, s_nation, year, revenue;
};

SsbQ31Plan MakeSsbQ31(const Database& db) {
  PlanBuilder pb("SSB-Q3.1");
  const Char<12> asia = Char<12>::From("ASIA");

  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_nation = cscan.Col<Char<15>>("c_nation");
  const ColumnRef c_region = cscan.Col<Char<12>>("c_region");
  auto& csel = pb.Select(cscan);
  csel.Cmp<Char<12>>(c_region, CmpOp::kEq, asia);

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_nation = sscan.Col<Char<15>>("s_nation");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.Cmp<Char<12>>(s_region, CmpOp::kEq, asia);

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");
  auto& dsel = pb.Select(dscan);
  dsel.Between<int32_t>(d_year, 1992, 1997);

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_custkey = loscan.Col<int32_t>("lo_custkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");

  auto& hj_c = pb.HashJoin(csel, loscan);
  hj_c.Key<int32_t>(lo_custkey, c_custkey);
  const ColumnRef jc_cnation = hj_c.Build<Char<15>>(c_nation);
  const ColumnRef jc_suppkey = hj_c.Probe<int32_t>(lo_suppkey);
  const ColumnRef jc_orderdate = hj_c.Probe<int32_t>(lo_orderdate);
  const ColumnRef jc_revenue = hj_c.Probe<int64_t>(lo_revenue);

  auto& hj_s = pb.HashJoin(ssel, hj_c);
  hj_s.Key<int32_t>(jc_suppkey, s_suppkey);
  const ColumnRef js_snation = hj_s.Build<Char<15>>(s_nation);
  const ColumnRef js_cnation = hj_s.Probe<Char<15>>(jc_cnation);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jc_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jc_revenue);

  auto& hj_d = pb.HashJoin(dsel, hj_s);
  hj_d.Key<int32_t>(js_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_cnation = hj_d.Probe<Char<15>>(js_cnation);
  const ColumnRef jd_snation = hj_d.Probe<Char<15>>(js_snation);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(js_revenue);

  auto& group = pb.HashGroup(hj_d);
  const ColumnRef g_cnation = group.Key<Char<15>>(jd_cnation);
  const ColumnRef g_snation = group.Key<Char<15>>(jd_snation);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_rev = group.Sum(jd_revenue);

  Plan plan = pb.Build(group, {g_cnation, g_snation, g_year, g_rev});
  return SsbQ31Plan{std::move(plan), g_cnation, g_snation, g_year, g_rev};
}

}  // namespace

QueryResult RunSsbQ31(const Database& db, const QueryOptions& opt) {
  const SsbQ31Plan q = MakeSsbQ31(db);
  struct Row {
    Char<15> c_nation, s_nation;
    int32_t year;
    int64_t revenue;
  };
  std::vector<Row> rows;
  q.plan.Run(opt, [&](const Plan::Batch& b) {
    for (size_t k = 0; k < b.size(); ++k) {
      rows.push_back(Row{b.Column<Char<15>>(q.c_nation)[k],
                         b.Column<Char<15>>(q.s_nation)[k],
                         b.Column<int32_t>(q.year)[k],
                         b.Column<int64_t>(q.revenue)[k]});
    }
  });

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return std::tie(a.c_nation, a.s_nation) < std::tie(b.c_nation, b.s_nation);
  });
  ResultBuilder rb({"c_nation", "s_nation", "d_year", "revenue"});
  for (const Row& r : rows) {
    rb.BeginRow()
        .Str(r.c_nation.View())
        .Str(r.s_nation.View())
        .Int(r.year)
        .Numeric(r.revenue, 2);
  }
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// Q4.1: four-dimension join, group by (year, c_nation), profit
// ---------------------------------------------------------------------------

namespace {

struct SsbQ41Plan {
  Plan plan;
  ColumnRef year, c_nation, profit;
};

SsbQ41Plan MakeSsbQ41(const Database& db) {
  PlanBuilder pb("SSB-Q4.1");
  const Char<12> america = Char<12>::From("AMERICA");

  auto& cscan = pb.Scan(db["customer"], "customer");
  const ColumnRef c_custkey = cscan.Col<int32_t>("c_custkey");
  const ColumnRef c_nation = cscan.Col<Char<15>>("c_nation");
  const ColumnRef c_region = cscan.Col<Char<12>>("c_region");
  auto& csel = pb.Select(cscan);
  csel.Cmp<Char<12>>(c_region, CmpOp::kEq, america);

  auto& sscan = pb.Scan(db["supplier"], "supplier");
  const ColumnRef s_suppkey = sscan.Col<int32_t>("s_suppkey");
  const ColumnRef s_region = sscan.Col<Char<12>>("s_region");
  auto& ssel = pb.Select(sscan);
  ssel.Cmp<Char<12>>(s_region, CmpOp::kEq, america);

  auto& pscan = pb.Scan(db["part"], "part");
  const ColumnRef p_partkey = pscan.Col<int32_t>("p_partkey");
  const ColumnRef p_mfgr = pscan.Col<Char<6>>("p_mfgr");
  auto& psel = pb.Select(pscan);
  psel.EqOr2<Char<6>>(p_mfgr, Char<6>::From("MFGR#1"), Char<6>::From("MFGR#2"));

  auto& dscan = pb.Scan(db["date"], "date");
  const ColumnRef d_datekey = dscan.Col<int32_t>("d_datekey");
  const ColumnRef d_year = dscan.Col<int32_t>("d_year");

  auto& loscan = pb.Scan(db["lineorder"], "lineorder");
  const ColumnRef lo_custkey = loscan.Col<int32_t>("lo_custkey");
  const ColumnRef lo_suppkey = loscan.Col<int32_t>("lo_suppkey");
  const ColumnRef lo_partkey = loscan.Col<int32_t>("lo_partkey");
  const ColumnRef lo_orderdate = loscan.Col<int32_t>("lo_orderdate");
  const ColumnRef lo_revenue = loscan.Col<int64_t>("lo_revenue");
  const ColumnRef lo_supplycost = loscan.Col<int64_t>("lo_supplycost");

  auto& hj_c = pb.HashJoin(csel, loscan);
  hj_c.Key<int32_t>(lo_custkey, c_custkey);
  const ColumnRef jc_cnation = hj_c.Build<Char<15>>(c_nation);
  const ColumnRef jc_suppkey = hj_c.Probe<int32_t>(lo_suppkey);
  const ColumnRef jc_partkey = hj_c.Probe<int32_t>(lo_partkey);
  const ColumnRef jc_orderdate = hj_c.Probe<int32_t>(lo_orderdate);
  const ColumnRef jc_revenue = hj_c.Probe<int64_t>(lo_revenue);
  const ColumnRef jc_supplycost = hj_c.Probe<int64_t>(lo_supplycost);

  auto& hj_s = pb.HashJoin(ssel, hj_c);
  hj_s.Key<int32_t>(jc_suppkey, s_suppkey);
  const ColumnRef js_cnation = hj_s.Probe<Char<15>>(jc_cnation);
  const ColumnRef js_partkey = hj_s.Probe<int32_t>(jc_partkey);
  const ColumnRef js_orderdate = hj_s.Probe<int32_t>(jc_orderdate);
  const ColumnRef js_revenue = hj_s.Probe<int64_t>(jc_revenue);
  const ColumnRef js_supplycost = hj_s.Probe<int64_t>(jc_supplycost);

  auto& hj_p = pb.HashJoin(psel, hj_s);
  hj_p.Key<int32_t>(js_partkey, p_partkey);
  const ColumnRef jp_cnation = hj_p.Probe<Char<15>>(js_cnation);
  const ColumnRef jp_orderdate = hj_p.Probe<int32_t>(js_orderdate);
  const ColumnRef jp_revenue = hj_p.Probe<int64_t>(js_revenue);
  const ColumnRef jp_supplycost = hj_p.Probe<int64_t>(js_supplycost);

  auto& hj_d = pb.HashJoin(dscan, hj_p);
  hj_d.Key<int32_t>(jp_orderdate, d_datekey);
  const ColumnRef jd_year = hj_d.Build<int32_t>(d_year);
  const ColumnRef jd_cnation = hj_d.Probe<Char<15>>(jp_cnation);
  const ColumnRef jd_revenue = hj_d.Probe<int64_t>(jp_revenue);
  const ColumnRef jd_supplycost = hj_d.Probe<int64_t>(jp_supplycost);

  auto& map = pb.Map(hj_d);
  const ColumnRef profit =
      map.Sub<int64_t>(jd_revenue, jd_supplycost, "profit");  // scale 2

  auto& group = pb.HashGroup(map);
  const ColumnRef g_year = group.Key<int32_t>(jd_year);
  const ColumnRef g_cnation = group.Key<Char<15>>(jd_cnation);
  const ColumnRef g_profit = group.Sum(profit);

  Plan plan = pb.Build(group, {g_year, g_cnation, g_profit});
  return SsbQ41Plan{std::move(plan), g_year, g_cnation, g_profit};
}

}  // namespace

QueryResult RunSsbQ41(const Database& db, const QueryOptions& opt) {
  const SsbQ41Plan q = MakeSsbQ41(db);
  struct Row {
    int32_t year;
    Char<15> c_nation;
    int64_t profit;
  };
  std::vector<Row> rows;
  q.plan.Run(opt, [&](const Plan::Batch& b) {
    for (size_t k = 0; k < b.size(); ++k) {
      rows.push_back(Row{b.Column<int32_t>(q.year)[k],
                         b.Column<Char<15>>(q.c_nation)[k],
                         b.Column<int64_t>(q.profit)[k]});
    }
  });

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.year != b.year) return a.year < b.year;
    return a.c_nation < b.c_nation;
  });
  ResultBuilder rb({"d_year", "c_nation", "profit"});
  for (const Row& r : rows)
    rb.BeginRow().Int(r.year).Str(r.c_nation.View()).Numeric(r.profit, 2);
  return rb.Finish();
}

// ---------------------------------------------------------------------------
// EXPLAIN entry point (SSB half; see queries_tpch.cc for the dispatcher)
// ---------------------------------------------------------------------------

namespace detail {

Plan SsbPlanFor(const Database& db, std::string_view query_name) {
  if (query_name == "SSB-Q1.1") return MakeSsbQ11(db).plan;
  if (query_name == "SSB-Q2.1") return MakeSsbQ21(db).plan;
  if (query_name == "SSB-Q3.1") return MakeSsbQ31(db).plan;
  if (query_name == "SSB-Q4.1") return MakeSsbQ41(db).plan;
  VCQ_CHECK_MSG(false, "unknown query name for PlanFor");
  std::abort();  // unreachable: the check above never returns
}

}  // namespace detail

}  // namespace vcq::tectorwise
