#ifndef VCQ_TECTORWISE_HASH_GROUP_H_
#define VCQ_TECTORWISE_HASH_GROUP_H_

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "runtime/barrier.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/core.h"
#include "tectorwise/operators.h"
#include "tectorwise/steps.h"

namespace vcq::tectorwise {

/// Vectorized hash aggregation (paper §2.2, §3.2): two phases for
/// cache-friendly parallelization. Phase one: each worker pre-aggregates
/// into a worker-local hash table, spilling group pointers into hash
/// partitions. Phase two (after a barrier): partitions are assigned to
/// workers, each merging all workers' spilled groups for its partitions and
/// then emitting them vector-at-a-time.
///
/// Group lookup mirrors the join's probe structure: hash primitives ->
/// tagged candidates -> per-key-column compare primitives -> advance loop;
/// tuples without a group take a scalar insert path that re-checks the
/// local table (the semantics of the paper's partition-then-insert trick
/// without duplicate groups). Aggregates are int64-valued (sum, count,
/// min, max) so the merge combine is a per-aggregate elementwise fold and
/// key equality is a memcmp over the zero-padded key region.
class HashGroup : public Operator {
 public:
  static constexpr size_t kPartitions = 64;

  struct Shared {
    explicit Shared(size_t thread_count)
        : barrier(thread_count),
          spills(thread_count),
          spill_files(thread_count, nullptr) {}

    struct Spill {
      std::array<std::vector<std::byte*>, kPartitions> parts;
    };

    runtime::Barrier barrier;
    std::vector<Spill> spills;                                // per worker
    /// Per-worker disk-spill files (runtime/spill.h) holding group entries
    /// evicted under memory pressure; written by the owning worker before
    /// the phase barrier, read by the merge workers after it. All nullptr
    /// on in-memory runs. (Distinct from `spills` above, which is the
    /// paper's in-memory pointer partitioning.)
    std::vector<runtime::SpillFile*> spill_files;
    std::array<std::vector<std::byte*>, kPartitions> merged;  // per partition
  };

  HashGroup(Shared* shared, size_t worker_id, size_t worker_count,
            std::unique_ptr<Operator> child, const ExecContext& ctx);

  // --- key / aggregate configuration (before first Next) -------------------

  /// Adds a grouping key column; returns its entry byte offset. Key and
  /// aggregate columns are auto-registered with the input Compactor, so
  /// the group-by compaction point needs no extra plan wiring: sparse
  /// input batches are densified before the group lookup when the policy
  /// asks for it.
  template <typename T>
  size_t AddKey(Slot* col) {
    VCQ_CHECK_MSG(agg_begin_ == 0, "keys must be added before aggregates");
    CompactColumn<T>(ctx_, compactor_, col);
    const size_t offset = AlignUp(key_end_, alignof(T));
    key_end_ = offset + sizeof(T);
    hash_steps_.push_back(key_steps_.empty()
                              ? KeyHashKind{MakeHash<T>(ctx_, col), {}}
                              : KeyHashKind{{}, MakeRehash<T>(ctx_, col)});
    key_steps_.push_back(KeySteps{
        // vectorized candidate compare
        [col, offset](size_t m, runtime::Hashmap::EntryHeader* const* cand,
                      const pos_t* cand_pos, uint8_t* match, bool first) {
          if (first) {
            CmpEntryKeyInit<T>(m, cand, cand_pos, Get<T>(col), offset, match);
          } else {
            CmpEntryKeyAnd<T>(m, cand, cand_pos, Get<T>(col), offset, match);
          }
        },
        // scalar equality for the miss/insert path
        [col, offset](const std::byte* entry, pos_t p) {
          return *reinterpret_cast<const T*>(entry + offset) ==
                 Get<T>(col)[p];
        },
        // scalar key init for new groups
        [col, offset](std::byte* entry, pos_t p) {
          *reinterpret_cast<T*>(entry + offset) = Get<T>(col)[p];
        }});
    return offset;
  }

  /// Adds sum(col) over an int64 column; returns the aggregate's offset.
  size_t AddSumAgg(Slot* col);
  /// Adds count(*); returns the aggregate's offset.
  size_t AddCountAgg();
  /// Adds min(col) over an int64 column; returns the aggregate's offset.
  size_t AddMinAgg(Slot* col);
  /// Adds max(col) over an int64 column; returns the aggregate's offset.
  size_t AddMaxAgg(Slot* col);

  // --- outputs (entry fields gathered into dense vectors) -----------------

  template <typename T>
  Slot* AddOutput(size_t field_offset) {
    outputs_.push_back(Output{VecBuffer(ctx_.vector_size * sizeof(T)),
                              std::make_unique<Slot>(), {}});
    Output& o = outputs_.back();
    o.slot->ptr = o.buffer.data();
    T* out = o.buffer.As<T>();
    o.gather = [field_offset, out](size_t m, std::byte* const* entries) {
      for (size_t k = 0; k < m; ++k)
        out[k] = *reinterpret_cast<const T*>(entries[k] + field_offset);
    };
    return o.slot.get();
  }

  /// Partition-emission compaction (ROADMAP follow-on to PR 1): when
  /// enabled, Next() packs groups from consecutive owned partitions into
  /// full dense output vectors instead of emitting whatever sub-vector
  /// remnants the merge produced, so downstream operators (e.g. Q18's
  /// having-Select) see dense input. Off by default to keep hand-wired
  /// pipelines byte-for-byte identical; the plan builder enables it
  /// whenever the compaction policy is not kNever.
  void SetDenseOutput(bool on) { dense_output_ = on; }

  size_t Next() override;

 private:
  struct KeyHashKind {
    HashStep hash;      // set for the first key
    RehashStep rehash;  // set for subsequent keys
  };
  struct KeySteps {
    std::function<void(size_t, runtime::Hashmap::EntryHeader* const*,
                       const pos_t*, uint8_t*, bool)>
        compare;
    std::function<bool(const std::byte*, pos_t)> equal;
    std::function<void(std::byte*, pos_t)> init;
  };
  struct Output {
    VecBuffer buffer;
    std::unique_ptr<Slot> slot;
    std::function<void(size_t m, std::byte* const* entries)> gather;
  };

  static size_t PartitionOf(uint64_t hash) { return (hash >> 52) & 63; }

  size_t entry_size() const { return AlignUp(agg_end_, 8); }
  void ConsumeChild();
  void MaybeSpillLocal();
  void ProcessBatch(size_t n, const pos_t* sel);
  void FindGroups(size_t n);
  std::byte* InsertGroup(uint64_t hash, pos_t p);
  void GrowLocalTable();
  void MergePartitions();

  Shared* shared_;
  size_t worker_id_;
  size_t worker_count_;
  std::unique_ptr<Operator> child_;
  ExecContext ctx_;

  enum class AggKind : uint8_t { kSum, kCount, kMin, kMax };
  struct AggDecl {
    size_t offset;
    const Slot* col;  // nullptr for count(*)
    AggKind kind;
  };

  size_t AddAgg(Slot* col, AggKind kind);

  std::vector<KeyHashKind> hash_steps_;
  std::vector<KeySteps> key_steps_;
  std::vector<AggDecl> aggs_;
  std::vector<Output> outputs_;

  size_t key_end_ = sizeof(runtime::Hashmap::EntryHeader);
  size_t agg_begin_ = 0;
  size_t agg_end_ = 0;

  /// Don't bother spilling fewer groups than this: eviction must actually
  /// relieve memory, and a near-empty table under pressure from elsewhere
  /// would spill every new group one at a time.
  static constexpr size_t kSpillMinGroups = 256;

  runtime::Hashmap local_ht_;
  runtime::MemPool pool_;
  runtime::MemPool merge_pool_;  // owns entries rehydrated from spill files
  size_t local_count_ = 0;
  Compactor compactor_;  // input densification (batch compaction point)
  LocalBatchStats stats_;

  bool consumed_ = false;
  bool dense_output_ = false;  // partition-emission compaction
  size_t emit_partition_ = 0;  // owned-partition cursor (worker-strided)
  size_t emit_index_ = 0;

  // Scratch vectors.
  VecBuffer hashes_;
  VecBuffer pos_;
  VecBuffer groups_;
  VecBuffer cand_;
  VecBuffer cand_k_;
  VecBuffer cand_pos_;
  VecBuffer match_;
  VecBuffer emit_entries_;  // cross-partition gather list (dense output)
};

}  // namespace vcq::tectorwise

#endif  // VCQ_TECTORWISE_HASH_GROUP_H_
