#include "runtime/perf_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace vcq::runtime {
namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct ReadFormat {
  uint64_t value;
  uint64_t time_enabled;
  uint64_t time_running;
};

}  // namespace

double PerfCounters::Values::nan() {
  return std::numeric_limits<double>::quiet_NaN();
}

PerfCounters::PerfCounters() {
  using V = Values;
  OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, &V::cycles);
  OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, &V::instructions);
  OpenEvent(PERF_TYPE_HW_CACHE,
            PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
            &V::l1d_misses);
  OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, &V::llc_misses);
  OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
            &V::branch_misses);
  // CYCLE_ACTIVITY.STALLS_MEM_ANY (Intel: event 0xa3, umask 0x14, cmask 20);
  // OpenEvent dedups, so the generic backend-stall event below only kicks in
  // if the raw event is unavailable on this machine.
  OpenEvent(PERF_TYPE_RAW, 0x145314a3, &V::memory_stall_cycles);
  OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND,
            &V::memory_stall_cycles);
}

void PerfCounters::OpenEvent(uint32_t type, uint64_t config,
                             double Values::* slot) {
  // Skip if this slot is already fed by an earlier (preferred) event.
  for (const Event& e : events_)
    if (e.slot != nullptr && &(current_.*slot) == e.slot) return;

  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.inherit = 1;  // count child/worker threads too
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const int fd =
      static_cast<int>(PerfEventOpen(&attr, 0, -1, -1, PERF_FLAG_FD_CLOEXEC));
  if (fd < 0) return;
  Event e;
  e.fd = fd;
  e.slot = &(current_.*slot);
  events_.push_back(e);
  slots_.push_back(slot);
}

PerfCounters::~PerfCounters() {
  for (const Event& e : events_) close(e.fd);
}

bool PerfCounters::available() const {
  bool cycles = false, instructions = false;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == &Values::cycles) cycles = true;
    if (slots_[i] == &Values::instructions) instructions = true;
  }
  return cycles && instructions;
}

void PerfCounters::Start() {
  for (Event& e : events_) {
    ioctl(e.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(e.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounters::Values PerfCounters::Stop() {
  Values out;
  for (size_t i = 0; i < events_.size(); ++i) {
    Event& e = events_[i];
    ioctl(e.fd, PERF_EVENT_IOC_DISABLE, 0);
    ReadFormat rf;
    if (read(e.fd, &rf, sizeof(rf)) != sizeof(rf)) continue;
    double value = static_cast<double>(rf.value);
    // Scale for multiplexing: value * enabled / running.
    if (rf.time_running > 0 && rf.time_running < rf.time_enabled)
      value = value * static_cast<double>(rf.time_enabled) /
              static_cast<double>(rf.time_running);
    if (rf.time_running == 0) continue;  // never scheduled -> keep NaN
    out.*(slots_[i]) = value;
  }
  return out;
}

}  // namespace vcq::runtime
