#include "runtime/worker_pool.h"

#include "common/check.h"

namespace vcq::runtime {

WorkerPool& WorkerPool::Global() {
  // Leaked on purpose: workers may outlive main() teardown order otherwise.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

WorkerPool::WorkerPool()
    : max_threads_(std::max(1u, std::thread::hardware_concurrency())) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::EnsureThreads(size_t needed) {
  while (threads_.size() < needed)
    threads_.emplace_back(&WorkerPool::WorkerLoop, this, threads_.size());
}

void WorkerPool::Run(size_t thread_count,
                     const std::function<void(size_t)>& fn) {
  VCQ_CHECK(thread_count >= 1);
  if (thread_count == 1) {
    fn(0);
    return;
  }
  // One parallel region at a time; concurrent queries queue up here.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  const size_t helpers = thread_count - 1;  // caller acts as worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  EnsureThreads(helpers);
  job_ = &fn;
  job_threads_ = helpers;
  job_remaining_ = helpers;
  ++job_generation_;
  const size_t my_generation = job_generation_;
  lock.unlock();
  work_cv_.notify_all();

  fn(0);

  lock.lock();
  done_cv_.wait(lock, [&] {
    return job_generation_ == my_generation && job_remaining_ == 0;
  });
  job_ = nullptr;
}

void WorkerPool::WorkerLoop(size_t pool_index) {
  size_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t my_id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr &&
                             job_generation_ != seen_generation &&
                             pool_index < job_threads_);
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      fn = job_;
      my_id = pool_index + 1;  // caller is worker 0
    }
    (*fn)(my_id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--job_remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vcq::runtime
