#include "runtime/worker_pool.h"

namespace vcq::runtime {

WorkerPool& WorkerPool::Global() {
  // Leaked on purpose: workers may outlive main() teardown order otherwise.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

}  // namespace vcq::runtime
