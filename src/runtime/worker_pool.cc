#include "runtime/worker_pool.h"

#include "common/check.h"

namespace vcq::runtime {

WorkerPool& WorkerPool::Global() {
  // Leaked on purpose: workers may outlive main() teardown order otherwise.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

WorkerPool::WorkerPool()
    : max_threads_(std::max(1u, std::thread::hardware_concurrency())) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

size_t WorkerPool::spawned_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

void WorkerPool::EnsureThreadsLocked(size_t needed) {
  while (threads_.size() < needed)
    threads_.emplace_back(&WorkerPool::WorkerLoop, this);
}

void WorkerPool::EnqueueLocked(std::shared_ptr<Job> job) {
  pending_slots_ += job->slots;
  // Coverage invariant: every unclaimed slot across all in-flight jobs has
  // a thread that is idle or will become idle without depending on any
  // active worker finishing — active workers may be blocked in a barrier
  // waiting for exactly these slots to start.
  EnsureThreadsLocked(active_ + pending_slots_);
  queue_.push_back(std::move(job));
}

void WorkerPool::Run(size_t thread_count,
                     const std::function<void(size_t)>& fn) {
  VCQ_CHECK(thread_count >= 1);
  if (thread_count == 1) {
    fn(0);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->slots = thread_count - 1;  // caller acts as worker 0
  job->remaining = job->slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnqueueLocked(job);
  }
  work_cv_.notify_all();

  fn(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job->remaining == 0; });
}

void WorkerPool::Submit(std::function<void()> task) {
  auto job = std::make_shared<Job>();
  job->task = std::move(task);
  job->slots = 1;
  job->remaining = 1;
  job->detached = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnqueueLocked(std::move(job));
  }
  work_cv_.notify_all();
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    // Drain before exiting: a job enqueued just before shutdown still has
    // waiters (a blocked Run caller, an ExecutionHandle) that must be
    // released — dropping it would strand them on a dying pool.
    if (shutdown_ && queue_.empty()) return;
    std::shared_ptr<Job> job = queue_.front();
    const size_t slot = job->next_slot++;
    if (job->next_slot == job->slots) queue_.pop_front();
    --pending_slots_;
    ++active_;
    lock.unlock();

    if (job->fn != nullptr) {
      (*job->fn)(slot + 1);  // the Run caller is worker 0
    } else {
      job->task();
    }

    lock.lock();
    --active_;
    if (--job->remaining == 0 && !job->detached) done_cv_.notify_all();
  }
}

}  // namespace vcq::runtime
