#ifndef VCQ_RUNTIME_TUNER_H_
#define VCQ_RUNTIME_TUNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/options.h"

// Self-tuning execution (paper §9.1: the optimizer, not the engineer,
// should pick execution strategies). Every data- and machine-dependent
// execution knob — compaction policy per Select/group point, join build
// protocol, ROF staged probes and their block size, vector size — becomes
// a TunableKnob with a discrete arm set, and a per-PreparedQuery Tuner
// learns the best arm from measured execution cost across repeated
// executions (the whole point of the Session API).
//
// The learning loop per execution:
//   1. Resolve(): the tuner picks one arm per knob and writes the choices
//      into a KnobChoices snapshot the engines read (per-plan-node for
//      Tectorwise via ExecContext, per-query for Typer via QueryOptions).
//   2. The engines run; NodeTelemetry records per-node wall spans (join
//      build inserts today — the spans JoinBuildTelemetry already
//      measures, kept per site instead of globally) and the session
//      records the query's end-to-end span.
//   3. Observe(): every knob's chosen arm is charged the measured
//      ns/tuple — its own node's span when one was recorded, the query
//      span otherwise (a factored bandit: knobs are explored one at a
//      time, so the shared reward still attributes cleanly).
//
// Arm selection is UCB1 in minimization form after a bounded, seed-
// deterministic exploration phase: knobs take turns (registration order),
// each cycling its arms in a seed-shuffled order for explore_reps rounds
// while every other knob holds its default arm. After exploration each
// knob independently picks argmin over its arms' best observed cost minus
// the UCB1 confidence bonus, so a drifting workload can still flip an
// arm. The whole arm sequence is a pure function of the seed
// (VCQ_TUNER_SEED) and the number of Resolve() calls — costs only matter
// after exploration — which is what makes the fault-injection and
// byte-identity harnesses replayable.

namespace vcq::runtime {

/// Knob kinds; the engines use (node, kind) pairs to look up choices.
enum class KnobKind : uint8_t {
  kVectorSize,  ///< Tectorwise vector size (per plan).
  kCompaction,  ///< Compaction arm at one Select/group point (encoding
                ///< below) or, for Typer, unused.
  kBuildMode,   ///< runtime::BuildMode as int (0 = kCas, 1 = kPartitioned).
  kRof,         ///< staged (ROF) probes on/off (0/1).
  kRofBlock,    ///< staged-probe block size in tuples.
};

/// Node id used for per-query (not per-plan-node) knobs: Typer's build
/// mode / ROF settings and the per-plan vector size.
inline constexpr uint32_t kQueryKnob = UINT32_MAX;

/// Compaction arm encoding (KnobKind::kCompaction): 0 = kNever,
/// 1 = kAlways, k >= 2 = kAdaptive with threshold 1/k. Keeps the arm set a
/// flat int list like every other knob.
inline constexpr int64_t kCompactionNever = 0;
inline constexpr int64_t kCompactionAlways = 1;

/// One resolved knob value for one execution.
struct KnobChoice {
  uint32_t node;
  KnobKind kind;
  int64_t value;
};

/// The per-execution snapshot of resolved knob values, written by
/// Tuner::Resolve and read by the engines (QueryOptions::knobs ->
/// tectorwise::ExecContext::knobs). A handful of entries per query, so
/// lookup is a linear scan.
class KnobChoices {
 public:
  /// Returned by Get when the tuner resolved no choice for (node, kind).
  static constexpr int64_t kUnset = INT64_MIN;

  void Add(uint32_t node, KnobKind kind, int64_t value) {
    choices_.push_back(KnobChoice{node, kind, value});
  }
  int64_t Get(uint32_t node, KnobKind kind) const {
    for (const KnobChoice& c : choices_) {
      if (c.node == node && c.kind == kind) return c.value;
    }
    return kUnset;
  }
  const std::vector<KnobChoice>& all() const { return choices_; }
  void clear() { choices_.clear(); }

 private:
  std::vector<KnobChoice> choices_;
};

/// Per-execution, per-node wall spans — the reward signal. Extends the
/// process-global CompactionTelemetry/JoinBuildTelemetry counters into a
/// per-run object: sites are plan-node indices (Tectorwise) or build
/// ordinals (Typer), each accumulating {ns, tuples} so a knob attached to
/// that node can be charged its own ns/tuple instead of the whole query's.
/// Fixed-size atomic slots: recording from parallel workers is lock-free
/// and allocation-free.
class NodeTelemetry {
 public:
  static constexpr size_t kMaxSites = 64;

  void RecordSpan(uint32_t site, uint64_t ns, uint64_t tuples) {
    if (site >= kMaxSites) return;  // out-of-range sites fall back to the
                                    // query-level reward
    sites_[site].ns.fetch_add(ns, std::memory_order_relaxed);
    sites_[site].tuples.fetch_add(tuples, std::memory_order_relaxed);
  }

  bool HasSpan(uint32_t site) const {
    return site < kMaxSites &&
           sites_[site].tuples.load(std::memory_order_relaxed) > 0;
  }

  /// Accumulated wall ns at `site` (0 when nothing was recorded) — read
  /// by EXPLAIN ANALYZE's build/probe split as well as the tuner.
  uint64_t SpanNs(uint32_t site) const {
    return site < kMaxSites ? sites_[site].ns.load(std::memory_order_relaxed)
                            : 0;
  }
  /// Accumulated tuples at `site`.
  uint64_t SpanTuples(uint32_t site) const {
    return site < kMaxSites
               ? sites_[site].tuples.load(std::memory_order_relaxed)
               : 0;
  }

  /// ns per tuple at `site`; 0 when nothing was recorded there.
  double NsPerTuple(uint32_t site) const {
    if (!HasSpan(site)) return 0;
    return static_cast<double>(
               sites_[site].ns.load(std::memory_order_relaxed)) /
           static_cast<double>(
               sites_[site].tuples.load(std::memory_order_relaxed));
  }

 private:
  struct Site {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> tuples{0};
  };
  Site sites_[kMaxSites];
};

/// The per-PreparedQuery multi-armed bandit over execution knobs. All
/// methods are thread-safe (concurrent Execute()s of one prepared query
/// share the tuner). Knobs are registered once at Prepare; Resolve/Observe
/// run per execution.
class Tuner {
 public:
  /// `seed` drives every random decision (exploration arm order);
  /// `explore_reps` is how many times each arm of each knob is visited
  /// during the bounded exploration phase before UCB takes over.
  explicit Tuner(uint64_t seed, size_t explore_reps = 2);

  /// Seed resolution: a nonzero `requested` (QueryOptions::tuner_seed)
  /// wins; otherwise VCQ_TUNER_SEED from the environment; otherwise a
  /// fixed default — the tuner is always seeded, never wall-clock random.
  static uint64_t ResolveSeed(uint64_t requested);

  /// Registers one tunable decision. `arms` are the candidate values (at
  /// least one), `default_arm` indexes the arm matching today's static
  /// configuration — it is what kOff/kFrozen-without-history resolve to
  /// and what the knob holds while other knobs explore. Returns the knob
  /// index.
  size_t RegisterKnob(std::string name, uint32_t node, KnobKind kind,
                      std::vector<int64_t> arms, size_t default_arm);

  /// Picks one arm per knob for the next execution and appends the
  /// choices to `out`. kLearn advances the exploration/UCB schedule;
  /// kFrozen (or a Freeze()d tuner) resolves every knob to its current
  /// best arm without advancing anything. (kOff executions skip the tuner
  /// entirely — the session never calls Resolve.)
  void Resolve(TuningMode mode, KnobChoices* out);

  /// Charges each knob's chosen arm with the execution's measured cost:
  /// the knob's own node span from `telemetry` when one was recorded, the
  /// query-level ns/tuple otherwise. Failed executions should not be
  /// observed (their spans are partial).
  void Observe(const KnobChoices& choices, const NodeTelemetry& telemetry,
               uint64_t query_ns, uint64_t query_tuples);

  /// Pins every knob to its current best arm: subsequent Resolve()s behave
  /// as kFrozen regardless of mode.
  void Freeze();
  bool frozen() const;

  /// True once the bounded exploration phase is complete (every arm of
  /// every knob visited explore_reps times).
  bool Converged() const;

  /// EXPLAIN surface: one block per knob — name, arms with visit counts
  /// and mean ns/tuple, the arm the next frozen execution would use, and
  /// the schedule position.
  std::string Describe() const;

  // --- introspection (tests, benches) --------------------------------------

  struct ArmStats {
    int64_t value = 0;
    uint64_t visits = 0;
    double mean_cost = 0;  ///< ns/tuple, running mean
    double min_cost = 0;   ///< ns/tuple, best observed (0 if unvisited)
  };

  size_t knob_count() const;
  const std::string& knob_name(size_t knob) const;
  std::vector<ArmStats> ArmsOf(size_t knob) const;
  /// The arm index a frozen execution would choose right now.
  size_t BestArm(size_t knob) const;
  uint64_t seed() const { return seed_; }

 private:
  struct Knob {
    std::string name;
    uint32_t node;
    KnobKind kind;
    std::vector<int64_t> arms;
    std::vector<uint64_t> visits;     // per arm
    std::vector<double> mean_cost;    // per arm, ns/tuple running mean
    // Per arm, lowest observed ns/tuple. Arm selection compares minima,
    // not means: execution cost per arm is deterministic up to additive
    // machine noise, so the minimum converges on the true cost while a
    // mean stays contaminated by every load spike it ever absorbed.
    std::vector<double> min_cost;
    std::vector<size_t> explore_order;  // seed-shuffled arm permutation
    size_t default_arm;
  };

  size_t BestArmLocked(const Knob& knob) const;
  size_t UcbArmLocked(const Knob& knob) const;
  /// Total executions the exploration phase spans.
  size_t ExploreTotalLocked() const;

  const uint64_t seed_;
  const size_t explore_reps_;
  mutable std::mutex mu_;
  std::vector<Knob> knobs_;
  size_t resolves_ = 0;  // kLearn executions scheduled so far
  bool frozen_ = false;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_TUNER_H_
