#include "runtime/types.h"

#include <cstdio>
#include <cstdlib>

namespace vcq::runtime {

int32_t DateFromString(std::string_view s) {
  VCQ_CHECK_MSG(s.size() == 10 && s[4] == '-' && s[7] == '-',
                "date must be YYYY-MM-DD");
  auto num = [&](size_t off, size_t len) {
    int32_t v = 0;
    for (size_t i = 0; i < len; ++i) {
      const char c = s[off + i];
      VCQ_CHECK_MSG(c >= '0' && c <= '9', "date digit expected");
      v = v * 10 + (c - '0');
    }
    return v;
  };
  const int32_t y = num(0, 4);
  const uint32_t m = static_cast<uint32_t>(num(5, 2));
  const uint32_t d = static_cast<uint32_t>(num(8, 2));
  VCQ_CHECK_MSG(m >= 1 && m <= 12 && d >= 1 && d <= 31, "date out of range");
  return DaysFromCivil(y, m, d);
}

std::string DateToString(int32_t days) {
  const Civil c = CivilFromDays(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", c.year, c.month, c.day);
  return buf;
}

std::string NumericToString(int64_t value, int scale) {
  VCQ_CHECK(scale >= 0 && scale <= 10);
  if (scale == 0) return std::to_string(value);
  const bool neg = value < 0;
  // Avoid overflow on INT64_MIN by working with unsigned magnitude.
  uint64_t mag = neg ? -static_cast<uint64_t>(value) : value;
  const uint64_t p = static_cast<uint64_t>(kPow10[scale]);
  const uint64_t whole = mag / p;
  const uint64_t frac = mag % p;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%llu.%0*llu", neg ? "-" : "",
                static_cast<unsigned long long>(whole), scale,
                static_cast<unsigned long long>(frac));
  return buf;
}

std::string NumericAvgToString(int64_t sum, int64_t count, int in_scale,
                               int out_scale) {
  VCQ_CHECK(count > 0);
  // Scale sum so the quotient carries out_scale fractional digits, then do
  // one exact division with half-up rounding. 128-bit intermediate keeps
  // this exact for any realistic TPC-H aggregate.
  __int128 scaled = static_cast<__int128>(sum);
  int shift = out_scale - in_scale;
  while (shift > 0) {
    scaled *= 10;
    --shift;
  }
  while (shift < 0) {
    // Out-scale below in-scale is not used by any query; keep exactness.
    VCQ_CHECK_MSG(false, "avg out_scale must be >= in_scale");
  }
  const bool neg = scaled < 0;
  __int128 mag = neg ? -scaled : scaled;
  const __int128 q = (mag + count / 2) / count;
  return NumericToString(neg ? -static_cast<int64_t>(q)
                             : static_cast<int64_t>(q),
                         out_scale);
}

}  // namespace vcq::runtime
