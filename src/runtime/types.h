#ifndef VCQ_RUNTIME_TYPES_H_
#define VCQ_RUNTIME_TYPES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/check.h"

// Value types shared by all three engines (paper §3: "the same data
// structures"). All types are trivially copyable PODs so they can live in
// raw columnar buffers and inside hash-table entries.
//
//  * Dates are 32-bit day numbers (days since 1970-01-01, proleptic
//    Gregorian), so date predicates are plain integer comparisons.
//  * Monetary/decimal values are 64-bit fixed-point integers; the scale is
//    part of the schema, not of the value (as in the paper's prototype,
//    which ignores overflow checking, §3.2).
//  * Short strings are inline Char<N> / Varchar<N> values, exactly like the
//    original test system, so string predicates run on columnar data without
//    pointer chasing.

namespace vcq::runtime {

// ---------------------------------------------------------------------------
// Date
// ---------------------------------------------------------------------------

/// Converts a civil date to days since the Unix epoch
/// (Howard Hinnant's days_from_civil algorithm).
constexpr int32_t DaysFromCivil(int32_t y, uint32_t m, uint32_t d) {
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);
  const uint32_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

struct Civil {
  int32_t year;
  uint32_t month;
  uint32_t day;
};

/// Inverse of DaysFromCivil.
constexpr Civil CivilFromDays(int32_t z) {
  z += 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);
  const uint32_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint32_t mp = (5 * doy + 2) / 153;
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint32_t m = mp + (mp < 10 ? 3 : -9);
  return Civil{y + (m <= 2), m, d};
}

/// Parses "YYYY-MM-DD"; aborts on malformed input (generator/test use only).
int32_t DateFromString(std::string_view s);

/// Formats a day number as "YYYY-MM-DD".
std::string DateToString(int32_t days);

/// Extracts the calendar year of a day number.
constexpr int32_t YearOf(int32_t days) { return CivilFromDays(days).year; }

// ---------------------------------------------------------------------------
// Fixed-point numerics
// ---------------------------------------------------------------------------

constexpr int64_t kPow10[] = {1,
                              10,
                              100,
                              1000,
                              10000,
                              100000,
                              1000000,
                              10000000,
                              100000000,
                              1000000000,
                              10000000000LL};

/// Renders a scale-`scale` fixed-point integer (e.g. 12345 @ scale 2 ->
/// "123.45"). Used for result normalization so all engines format alike.
std::string NumericToString(int64_t value, int scale);

/// Exact decimal average with half-up rounding, rendered at `out_scale`
/// digits: round(sum / count * 10^(out_scale - in_scale)).
std::string NumericAvgToString(int64_t sum, int64_t count, int in_scale,
                               int out_scale);

// ---------------------------------------------------------------------------
// Inline strings
// ---------------------------------------------------------------------------

/// Fixed-width string, zero-padded. Equality compares all N bytes.
template <size_t N>
struct Char {
  char data[N];

  static Char From(std::string_view s) {
    VCQ_CHECK_MSG(s.size() <= N, "Char<N> overflow");
    Char c;
    std::memset(c.data, 0, N);
    std::memcpy(c.data, s.data(), s.size());
    return c;
  }

  std::string_view View() const {
    size_t len = N;
    while (len > 0 && data[len - 1] == '\0') --len;
    return {data, len};
  }

  friend bool operator==(const Char& a, const Char& b) {
    return std::memcmp(a.data, b.data, N) == 0;
  }
  friend bool operator<(const Char& a, const Char& b) {
    return std::memcmp(a.data, b.data, N) < 0;
  }
  friend bool operator<=(const Char& a, const Char& b) { return !(b < a); }
  friend bool operator>(const Char& a, const Char& b) { return b < a; }
  friend bool operator>=(const Char& a, const Char& b) { return !(a < b); }
};

/// Bounded-length string with an explicit length byte, stored inline.
template <size_t N>
struct Varchar {
  uint8_t len;
  char data[N];

  static Varchar From(std::string_view s) {
    VCQ_CHECK_MSG(s.size() <= N, "Varchar<N> overflow");
    Varchar v;
    v.len = static_cast<uint8_t>(s.size());
    std::memset(v.data, 0, N);
    std::memcpy(v.data, s.data(), s.size());
    return v;
  }

  std::string_view View() const { return {data, len}; }

  /// Substring search; the Q9 "p_name like '%green%'" predicate.
  bool Contains(std::string_view needle) const {
    return View().find(needle) != std::string_view::npos;
  }

  friend bool operator==(const Varchar& a, const Varchar& b) {
    return a.len == b.len && std::memcmp(a.data, b.data, a.len) == 0;
  }
  friend bool operator<(const Varchar& a, const Varchar& b) {
    return a.View() < b.View();
  }
  friend bool operator<=(const Varchar& a, const Varchar& b) {
    return !(b < a);
  }
  friend bool operator>(const Varchar& a, const Varchar& b) { return b < a; }
  friend bool operator>=(const Varchar& a, const Varchar& b) {
    return !(a < b);
  }
};

static_assert(sizeof(Char<10>) == 10);
static_assert(sizeof(Varchar<55>) == 56);

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_TYPES_H_
