#ifndef VCQ_RUNTIME_BARRIER_H_
#define VCQ_RUNTIME_BARRIER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "runtime/cancel.h"

namespace vcq::runtime {

/// Outcome of one token-aware barrier wait (Barrier::WaitOrAbort).
enum class BarrierStatus {
  kLeader,    ///< This thread arrived last and ran `on_last`.
  kFollower,  ///< Released normally after the leader's `on_last`.
  kAborted,   ///< The token tripped before the generation completed; this
              ///< thread withdrew its arrival and must skip the phase the
              ///< barrier guards (the leader's `on_last` did not run for it).
};

/// Reusable barrier for pipeline-phase ordering (paper §6.1: "pipeline
/// breaking operators use a barrier to enforce a global order of
/// sub-tasks" — e.g. hash-join build completes before any probe starts).
/// The callable passed to Wait runs exactly once, on the last arriving
/// thread, while the others are blocked — the natural place for
/// finalize-build work such as sizing the hash table.
///
/// Deadlock-safety contract: a barrier of width N only releases once all N
/// threads arrive, so every participant must be running concurrently. The
/// runtime guarantees this by gang-scheduling parallel regions
/// (runtime::Scheduler): a region's worker slots are admitted
/// all-or-nothing onto the fixed worker set, never piecemeal — size
/// barriers to the region's thread_count and nothing else.
///
/// Gang scheduling cannot help when a participant *dies*: a worker whose
/// phase body threw never arrives, and the plain Wait() would block its
/// siblings forever. WaitOrAbort() closes that hole — the scheduler's
/// exception backstop trips the region's CancelToken, every waiter polls
/// the token while blocked, withdraws its arrival on a trip, and returns
/// kAborted so the caller skips the guarded phase and drains. Use the
/// token-aware form at every barrier a failure-containable run crosses;
/// plain Wait() remains for unmanaged (token-less) runs, where an escaped
/// exception is a caller bug and the seed's fail-fast behavior stands.
class Barrier {
 public:
  explicit Barrier(size_t thread_count) : threads_(thread_count) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void Wait() {
    Wait([] {});
  }

  /// Returns true on the thread that executed `on_last`.
  template <typename F>
  bool Wait(F&& on_last) {
    return WaitOrAbort(std::forward<F>(on_last), nullptr) ==
           BarrierStatus::kLeader;
  }

  BarrierStatus WaitOrAbort(const CancelToken* token) {
    return WaitOrAbort([] {}, token);
  }

  /// Token-aware wait. A tripped token makes the wait abort instead of
  /// blocking on participants that may never arrive: the thread withdraws
  /// its own arrival (so a later generation still balances) and returns
  /// kAborted. Already-tripped tokens abort before arrival is recorded,
  /// which keeps all post-trip arrivals consistent. `on_last` only ever
  /// runs when the full gang arrived; with a nullptr token this is exactly
  /// the classic blocking barrier.
  template <typename F>
  BarrierStatus WaitOrAbort(F&& on_last, const CancelToken* token) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (Interrupted(token)) return BarrierStatus::kAborted;
    const size_t generation = generation_;
    if (++arrived_ == threads_) {
      on_last();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return BarrierStatus::kLeader;
    }
    if (token == nullptr) {
      cv_.wait(lock, [&] { return generation != generation_; });
      return BarrierStatus::kFollower;
    }
    // Poll granularity trades abort latency against idle wakeups; 1ms is
    // far below any studied query's phase time and only paid while a
    // deadline/cancel/failure is actually possible (token != nullptr).
    while (!cv_.wait_for(lock, std::chrono::milliseconds(1),
                         [&] { return generation != generation_; })) {
      if (token->Interrupted()) {
        // The generation did not complete; take back this arrival so the
        // barrier stays balanced for participants that abort later (they
        // see the trip themselves) and for any future generation.
        --arrived_;
        return BarrierStatus::kAborted;
      }
    }
    return BarrierStatus::kFollower;
  }

 private:
  const size_t threads_;
  size_t arrived_ = 0;
  size_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_BARRIER_H_
