#ifndef VCQ_RUNTIME_BARRIER_H_
#define VCQ_RUNTIME_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace vcq::runtime {

/// Reusable barrier for pipeline-phase ordering (paper §6.1: "pipeline
/// breaking operators use a barrier to enforce a global order of
/// sub-tasks" — e.g. hash-join build completes before any probe starts).
/// The callable passed to Wait runs exactly once, on the last arriving
/// thread, while the others are blocked — the natural place for
/// finalize-build work such as sizing the hash table.
///
/// Deadlock-safety contract: a barrier of width N only releases once all N
/// threads arrive, so every participant must be running concurrently. The
/// runtime guarantees this by gang-scheduling parallel regions
/// (runtime::Scheduler): a region's worker slots are admitted
/// all-or-nothing onto the fixed worker set, never piecemeal — size
/// barriers to the region's thread_count and nothing else.
class Barrier {
 public:
  explicit Barrier(size_t thread_count) : threads_(thread_count) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void Wait() {
    Wait([] {});
  }

  /// Returns true on the thread that executed `on_last`.
  template <typename F>
  bool Wait(F&& on_last) {
    std::unique_lock<std::mutex> lock(mutex_);
    const size_t generation = generation_;
    if (++arrived_ == threads_) {
      on_last();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation != generation_; });
    return false;
  }

 private:
  const size_t threads_;
  size_t arrived_ = 0;
  size_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_BARRIER_H_
