#include "runtime/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

namespace vcq::runtime {

void FaultInjector::Arm(std::string_view point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[std::string(point)];
  state.armed = true;
  state.spec = spec;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) state.armed = false;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) state.hits = 0;
  fired_ = 0;
}

uint64_t FaultInjector::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(std::string(point));
  return it != points_.end() ? it->second.hits : 0;
}

uint64_t FaultInjector::FiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void FaultInjector::Hit(const char* point, const CancelToken* token) {
  FaultSpec fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& state = points_[point];
    const uint64_t ordinal = ++state.hits;
    if (!state.armed) return;
    const bool matches = state.spec.repeat
                             ? ordinal >= state.spec.fire_on_hit
                             : ordinal == state.spec.fire_on_hit;
    if (!matches) return;
    ++fired_;
    fire = state.spec;
  }
  // Act outside the lock: a throw must not leave mu_ held, and a delay
  // must not serialize unrelated points.
  switch (fire.action) {
    case FaultAction::kThrowBadAlloc:
      throw std::bad_alloc();
    case FaultAction::kCancel:
      if (token != nullptr) token->Cancel();
      break;
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(fire.delay_us));
      break;
  }
}

uint64_t FaultInjector::NextRand() {
  // SplitMix64: tiny, seedable, good enough for choosing hit ordinals.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t FaultInjector::RandOrdinal(uint64_t bound) {
  if (bound <= 1) return 1;
  return 1 + NextRand() % bound;
}

const std::vector<const char*>& FaultInjector::KnownPoints() {
  // Keep in sync with the FaultHit call sites; the sweep test dry-runs the
  // workload and asserts every listed point is actually crossed, so a
  // renamed or dropped site fails loudly here instead of silently
  // shrinking coverage.
  static const std::vector<const char*> kPoints = {
      "scan.morsel",             // per-morsel poll, all engines' scans
      "join_build.size",         // sizing barrier: directory + arena alloc
      "join_build.insert",       // per-worker insert phase entry
      "join_build.finish",       // before the final build barrier
      "typer.join.materialize",  // Typer build-side row materialization
      "typer.group.alloc",       // Typer local group-table entry alloc
      "typer.group.merge",       // Typer partition-parallel group merge
      "tw.join.materialize",     // Tectorwise build-side row scatter
      "tw.group.alloc",          // Tectorwise group-entry alloc
      "tw.group.merge",          // Tectorwise spill-partition merge
      "session.tuner",           // tuned executions: bandit arm draw
      "spill.open",              // spill-file create (SpillManager::Create)
      "spill.write",             // spill-segment append (SpillFile::Append)
      "spill.read",              // spill-segment readback (SpillFile::Read)
      "spill.unlink",            // spill-file cleanup (absorbed, not fatal)
  };
  return kPoints;
}

FaultInjector* FaultInjector::ProcessWide() {
  static FaultInjector* instance = []() -> FaultInjector* {
    const char* spec_env = std::getenv("VCQ_FAULT");
    if (spec_env == nullptr || spec_env[0] == '\0') return nullptr;
    uint64_t seed = 1;
    if (const char* seed_env = std::getenv("VCQ_FAULT_SEED"))
      seed = std::strtoull(seed_env, nullptr, 10);
    auto* fi = new FaultInjector(seed);
    // point[:hit[:action]]
    std::string spec(spec_env);
    std::string point = spec;
    FaultSpec fault;
    const size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      point = spec.substr(0, colon);
      std::string rest = spec.substr(colon + 1);
      const size_t colon2 = rest.find(':');
      std::string hit = colon2 == std::string::npos ? rest
                                                    : rest.substr(0, colon2);
      if (!hit.empty()) fault.fire_on_hit = std::strtoull(hit.c_str(), nullptr, 10);
      if (colon2 != std::string::npos) {
        const std::string action = rest.substr(colon2 + 1);
        if (action == "cancel") fault.action = FaultAction::kCancel;
        else if (action == "delay") fault.action = FaultAction::kDelay;
        else fault.action = FaultAction::kThrowBadAlloc;
      }
    }
    if (fault.fire_on_hit == 0) fault.fire_on_hit = 1;
    fi->Arm(point, fault);
    return fi;
  }();
  return instance;
}

}  // namespace vcq::runtime
