#include "runtime/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "runtime/metrics.h"
#include "runtime/resource_governor.h"

namespace vcq::runtime {

// Out-of-line half of QueryLedger::Charge's trip branch (see
// resource_governor.h): that header is included by every allocation site,
// so the trace/metrics dependencies live here instead.
void QueryLedger::RecordTrip(size_t in_use_bytes) {
  static metrics::Counter& trips =
      metrics::Registry::Global().GetCounter("vcq.governor.trips_total");
  trips.Add();
  if (trace_ != nullptr) {
    TraceSpan span;
    span.cat = "governor";
    span.name = "governor.trip";
    span.start_ns = span.end_ns = QueryTrace::NowNs();
    span.tuples = in_use_bytes;
    trace_->AddEvent(std::move(span));
  }
}

void QueryTrace::AddLaneSpan(uint32_t lane, TraceSpan span) {
  if (lane >= kMaxLanes) {
    AddEvent(std::move(span));
    return;
  }
  span.lane = lane;
  lanes_[lane].push_back(std::move(span));
}

void QueryTrace::AddEvent(TraceSpan span) {
  if (span.lane < kMaxLanes) span.lane = kSessionLane;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(span));
}

void QueryTrace::AddInstant(const char* cat, std::string name,
                            uint32_t site) {
  TraceSpan span;
  span.cat = cat;
  span.name = std::move(name);
  span.start_ns = span.end_ns = NowNs();
  span.site = site;
  AddEvent(std::move(span));
}

void QueryTrace::RecordOperator(uint32_t site, uint64_t ns, uint64_t rows,
                                uint64_t batches) {
  if (site >= kMaxSites) return;
  SiteAgg& agg = ops_[site];
  agg.ns.fetch_add(ns, std::memory_order_relaxed);
  agg.rows.fetch_add(rows, std::memory_order_relaxed);
  agg.batches.fetch_add(batches, std::memory_order_relaxed);
}

QueryTrace::OperatorStats QueryTrace::OperatorAt(uint32_t site) const {
  OperatorStats stats;
  if (site >= kMaxSites) return stats;
  const SiteAgg& agg = ops_[site];
  stats.ns = agg.ns.load(std::memory_order_relaxed);
  stats.rows = agg.rows.load(std::memory_order_relaxed);
  stats.batches = agg.batches.load(std::memory_order_relaxed);
  return stats;
}

bool QueryTrace::HasOperator(uint32_t site) const {
  if (site >= kMaxSites) return false;
  return ops_[site].batches.load(std::memory_order_relaxed) != 0 ||
         ops_[site].ns.load(std::memory_order_relaxed) != 0;
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::vector<TraceSpan> out;
  for (const std::vector<TraceSpan>& lane : lanes_)
    out.insert(out.end(), lane.begin(), lane.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.insert(out.end(), events_.begin(), events_.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

size_t QueryTrace::span_count() const {
  size_t n = 0;
  for (const std::vector<TraceSpan>& lane : lanes_) n += lane.size();
  std::lock_guard<std::mutex> lock(mu_);
  return n + events_.size();
}

uint64_t QueryTrace::SpillBytesAt(uint32_t site) const {
  uint64_t bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceSpan& span : events_) {
    if (span.site == site && span.name == "spill.write")
      bytes += span.tuples;
  }
  return bytes;
}

void QueryTrace::Append(const QueryTrace& other) {
  std::vector<TraceSpan> spans = other.Spans();
  std::lock_guard<std::mutex> lock(mu_);
  for (TraceSpan& span : spans) {
    if (span.lane < kMaxLanes) span.lane = kSessionLane;
    events_.push_back(std::move(span));
  }
}

namespace {

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string QueryTrace::ToChromeJson() const {
  const std::vector<TraceSpan> spans = Spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out += ',';
    first = false;
    char buf[256];
    // Complete ("X") events; timestamps in microseconds on the
    // steady-clock epoch. One tid per lane, the event lane last.
    out += "{\"name\":\"";
    AppendJsonEscaped(out, span.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, span.cat);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u,\"args\":{",
                  static_cast<double>(span.start_ns) / 1e3,
                  static_cast<double>(span.duration_ns()) / 1e3, span.lane);
    out += buf;
    bool first_arg = true;
    if (span.site != kNoSite) {
      std::snprintf(buf, sizeof(buf), "\"site\":%u", span.site);
      out += buf;
      first_arg = false;
    }
    if (span.tuples != 0) {
      std::snprintf(buf, sizeof(buf), "%s\"tuples\":%" PRIu64,
                    first_arg ? "" : ",", span.tuples);
      out += buf;
      first_arg = false;
    }
    if (span.calls != 0) {
      std::snprintf(buf, sizeof(buf), "%s\"batches\":%" PRIu64,
                    first_arg ? "" : ",", span.calls);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace vcq::runtime
