#include "runtime/throttled_source.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/check.h"

namespace vcq::runtime {

namespace {
constexpr size_t kChunk = 4 << 20;  // 4 MB I/O units, SSD-realistic
}

ThrottledSource::ThrottledSource(std::string path,
                                 uint64_t bandwidth_bytes_per_sec)
    : path_(std::move(path)), bandwidth_(bandwidth_bytes_per_sec) {}

ThrottledSource::~ThrottledSource() {
  if (loader_.joinable()) loader_.join();
  unlink(path_.c_str());
}

void ThrottledSource::Spill(const void* data, uint64_t bytes) {
  // First Spill truncates any stale file; later calls append.
  const int flags =
      O_WRONLY | O_CREAT | (file_bytes_ == 0 ? O_TRUNC : O_APPEND);
  const int fd = open(path_.c_str(), flags, 0644);
  VCQ_CHECK_MSG(fd >= 0, "cannot create spill file");
  const char* p = static_cast<const char*>(data);
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t n = write(fd, p, std::min<uint64_t>(remaining, kChunk));
    VCQ_CHECK_MSG(n > 0, "spill write failed");
    p += n;
    remaining -= static_cast<uint64_t>(n);
  }
  close(fd);
  file_bytes_ += bytes;
}

void ThrottledSource::StartReplay() {
  VCQ_CHECK(!running_);
  watermark_.store(0, std::memory_order_relaxed);
  running_ = true;
  loader_ = std::thread(&ThrottledSource::LoaderLoop, this);
}

void ThrottledSource::LoaderLoop() {
  using Clock = std::chrono::steady_clock;
  const int fd = open(path_.c_str(), O_RDONLY);
  VCQ_CHECK_MSG(fd >= 0, "cannot open spill file");
  // Drop any cached pages so the replay actually reads (best effort; if the
  // kernel ignores it, the token bucket below still enforces the bandwidth).
  posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);

  std::vector<char> buf(kChunk);
  const Clock::time_point start = Clock::now();
  uint64_t replayed = 0;
  while (true) {
    const ssize_t n = read(fd, buf.data(), buf.size());
    VCQ_CHECK_MSG(n >= 0, "spill read failed");
    if (n == 0) break;
    replayed += static_cast<uint64_t>(n);
    if (bandwidth_ > 0) {
      // Token bucket: sleep until this many bytes are "allowed".
      const double due_s = static_cast<double>(replayed) /
                           static_cast<double>(bandwidth_);
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(due_s));
      std::this_thread::sleep_until(due);
    }
    watermark_.store(replayed, std::memory_order_release);
    cv_.notify_all();
  }
  close(fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    watermark_.store(replayed, std::memory_order_release);
  }
  cv_.notify_all();
}

void ThrottledSource::WaitForBytes(uint64_t offset) {
  if (watermark_.load(std::memory_order_acquire) >= offset) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return watermark_.load(std::memory_order_acquire) >= offset;
  });
}

uint64_t ThrottledSource::Join() {
  if (loader_.joinable()) loader_.join();
  running_ = false;
  return watermark_.load(std::memory_order_acquire);
}

}  // namespace vcq::runtime
