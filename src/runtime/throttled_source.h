#ifndef VCQ_RUNTIME_THROTTLED_SOURCE_H_
#define VCQ_RUNTIME_THROTTLED_SOURCE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace vcq::runtime {

/// Out-of-memory experiment substrate (Table 5 substitution, DESIGN.md §4).
/// The paper streams table data from a 1.4 GB/s SATA-SSD RAID while queries
/// run; we reproduce the same code path — scans gated on data arrival, I/O
/// overlapped with compute — by replaying the database through a
/// bandwidth-capped loader thread.
///
/// Usage: serialize the working set once with Spill(); then per measured run
/// call StartReplay(), which launches a loader that re-reads the file at the
/// configured bandwidth and advances a byte watermark. Scans call
/// WaitForBytes(offset) before touching tuples whose backing bytes lie
/// beyond the watermark.
class ThrottledSource {
 public:
  /// `bandwidth_bytes_per_sec` == 0 means unthrottled (pure file replay).
  ThrottledSource(std::string path, uint64_t bandwidth_bytes_per_sec);
  ~ThrottledSource();
  ThrottledSource(const ThrottledSource&) = delete;
  ThrottledSource& operator=(const ThrottledSource&) = delete;

  /// Writes `bytes` of data to the backing file (called once per setup).
  void Spill(const void* data, uint64_t bytes);

  /// Starts the loader thread; returns immediately.
  void StartReplay();

  /// Blocks until at least `offset` bytes have been replayed.
  void WaitForBytes(uint64_t offset);

  /// Blocks until the replay completed; returns total replayed bytes.
  uint64_t Join();

  uint64_t file_bytes() const { return file_bytes_; }

 private:
  void LoaderLoop();

  std::string path_;
  uint64_t bandwidth_;
  uint64_t file_bytes_ = 0;
  std::atomic<uint64_t> watermark_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread loader_;
  bool running_ = false;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_THROTTLED_SOURCE_H_
