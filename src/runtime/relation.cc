#include "runtime/relation.h"

#include <cstdlib>

#include "common/bit_util.h"

namespace vcq::runtime {

std::shared_ptr<std::byte[]> Relation::AllocateAligned(size_t bytes) {
  // 64-byte alignment: cache-line- and AVX-512-friendly scans.
  if (bytes == 0) bytes = 64;
  void* p = std::aligned_alloc(64, AlignUp(bytes, 64));
  VCQ_CHECK_MSG(p != nullptr, "column allocation failed");
  return {static_cast<std::byte*>(p),
          [](std::byte* ptr) { std::free(ptr); }};
}

}  // namespace vcq::runtime
