#ifndef VCQ_RUNTIME_HASHMAP_H_
#define VCQ_RUNTIME_HASHMAP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"
#include "runtime/barrier.h"
#include "runtime/cancel.h"
#include "runtime/fault_injector.h"
#include "runtime/options.h"
#include "runtime/resource_governor.h"
#include "runtime/spill.h"
#include "runtime/tuner.h"

namespace vcq::runtime {

/// Chaining hash table shared by Typer and Tectorwise (paper §3.2): a bucket
/// array of tagged pointers plus externally allocated entries (row format,
/// MemPool). The upper 16 bits of each bucket pointer encode a small
/// Bloom-filter-like tag ("using 16 unused bits of each pointer"), so a
/// probe miss usually skips the collision chain entirely — this is what
/// makes selective joins cheap in both engines.
///
/// The table itself is key-agnostic: operators define their own entry
/// layouts that start with EntryHeader and do their own key comparisons,
/// which is precisely the paper's framing (Typer fuses the comparison into
/// the probe loop; Tectorwise runs one compare primitive per key column).
class Hashmap {
 public:
  struct EntryHeader {
    EntryHeader* next;
    uint64_t hash;
  };

  static constexpr uintptr_t kPtrMask = (uintptr_t{1} << 48) - 1;

  Hashmap() = default;
  Hashmap(const Hashmap&) = delete;
  Hashmap& operator=(const Hashmap&) = delete;

  /// Sizes the bucket array for `entry_count` entries (load factor <= 0.5).
  /// Not thread-safe; call once before the parallel build phase. Strong
  /// exception guarantee: a bad_alloc leaves the previous directory (and
  /// capacity/mask) intact, so a failed build never publishes a
  /// capacity/mask pair that disagrees with the live bucket array.
  void SetSize(size_t entry_count) {
    const size_t capacity = NextPow2(entry_count * 2);
    auto buckets = std::make_unique<std::atomic<uintptr_t>[]>(capacity);
    for (size_t i = 0; i < capacity; ++i)
      buckets[i].store(0, std::memory_order_relaxed);
    buckets_ = std::move(buckets);
    capacity_ = capacity;
    mask_ = capacity_ - 1;
  }

  void Clear() {
    for (size_t i = 0; i < capacity_; ++i)
      buckets_[i].store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Bloom tag derived from the hash's top 4 bits: one of 16 bits in the
  /// pointer's upper 16 bits.
  static uintptr_t TagOf(uint64_t hash) {
    return uintptr_t{1} << (48 + (hash >> 60));
  }

  static EntryHeader* Ptr(uintptr_t bucket) {
    return reinterpret_cast<EntryHeader*>(bucket & kPtrMask);
  }

  size_t BucketOf(uint64_t hash) const { return hash & mask_; }

  /// Chain head with Bloom pre-filter: returns nullptr without touching the
  /// chain when the tag bit for this hash is absent.
  EntryHeader* FindChainTagged(uint64_t hash) const {
    const uintptr_t b =
        buckets_[BucketOf(hash)].load(std::memory_order_relaxed);
    return (b & TagOf(hash)) ? Ptr(b) : nullptr;
  }

  /// Chain head without the filter (used by the tag-ablation bench).
  EntryHeader* FindChain(uint64_t hash) const {
    return Ptr(buckets_[BucketOf(hash)].load(std::memory_order_relaxed));
  }

  /// Thread-safe insert via CAS; preserves existing tag bits and adds the
  /// entry's own. `e->hash` must already be set.
  void Insert(EntryHeader* e) {
    std::atomic<uintptr_t>& slot = buckets_[BucketOf(e->hash)];
    const uintptr_t tag = TagOf(e->hash);
    uintptr_t old = slot.load(std::memory_order_relaxed);
    uintptr_t desired;
    do {
      e->next = Ptr(old);
      desired = reinterpret_cast<uintptr_t>(e) | (old & ~kPtrMask) | tag;
    } while (!slot.compare_exchange_weak(old, desired,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  /// Partitioned-build bucket publish: one plain store of the chain head
  /// plus the accumulated tag bits — no CAS. Only valid while the calling
  /// thread exclusively owns `bucket` (disjoint bucket ranges,
  /// runtime::JoinBuild).
  void SetBucketOwned(size_t bucket, EntryHeader* head, uintptr_t tags) {
    buckets_[bucket].store(reinterpret_cast<uintptr_t>(head) | tags,
                           std::memory_order_relaxed);
  }

  /// Single-threaded insert (no CAS); for serial builds and tests.
  void InsertUnlocked(EntryHeader* e) {
    std::atomic<uintptr_t>& slot = buckets_[BucketOf(e->hash)];
    const uintptr_t old = slot.load(std::memory_order_relaxed);
    e->next = Ptr(old);
    slot.store(reinterpret_cast<uintptr_t>(e) | (old & ~kPtrMask) |
                   TagOf(e->hash),
               std::memory_order_relaxed);
  }

  /// Raw bucket array (SIMD gather probing, Fig. 8/9).
  const std::atomic<uintptr_t>* buckets() const { return buckets_.get(); }
  uint64_t mask() const { return mask_; }

 private:
  std::unique_ptr<std::atomic<uintptr_t>[]> buckets_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
};

/// One worker's materialized build-side rows: contiguous `stride`-byte rows,
/// each beginning with an EntryHeader whose hash is already set. Produced by
/// the materialize phase of either engine, consumed by JoinBuild.
///
/// Under spill pressure (runtime/spill.h) the owning engine may evict
/// completed chunks to a SpillFile and release their memory: `spill` then
/// holds the evicted rows (same stride, write order) and `total` counts
/// only the live in-memory rows. JoinBuild streams the spilled segments
/// back during the insert phase — spilling forces the kPartitioned
/// protocol, whose two passes re-read the input anyway.
struct EntryChunkList {
  std::vector<std::pair<std::byte*, size_t>> chunks;  // (base, row count)
  size_t total = 0;             // live rows (in the chunks above)
  SpillFile* spill = nullptr;   // rows evicted under memory pressure
  size_t spilled_rows = 0;

  void Add(std::byte* base, size_t rows) {
    chunks.emplace_back(base, rows);
    total += rows;
  }

  /// Moves every live chunk's rows into `file` (one segment per chunk,
  /// write order = creation order) and forgets them; the caller releases
  /// the backing memory. `stride` is the row size.
  void SpillTo(SpillFile* file, size_t stride) {
    for (const auto& [base, rows] : chunks) {
      if (rows == 0) continue;
      file->Append(0, base, rows * stride, rows);
      spilled_rows += rows;
    }
    spill = file;
    chunks.clear();
    total = 0;
  }
};

/// Process-wide accumulator of join-build wall time, drained by
/// benchutil::Measure for the build/probe timing split: each JoinBuild adds
/// one span, from the sizing barrier (the last worker has finished
/// materializing) to the final barrier — the insert protocol itself,
/// deliberately excluding the engine-specific materialize phase (whose
/// drain may execute whole nested subplans, which would double-count
/// builds stacked on a join's build side, and whose per-worker skew would
/// otherwise be booked as build time).
class JoinBuildTelemetry {
 public:
  static JoinBuildTelemetry& Global() {
    static JoinBuildTelemetry t;
    return t;
  }

  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void Reset() { build_ns_.store(0, std::memory_order_relaxed); }
  void Add(uint64_t ns) { build_ns_.fetch_add(ns, std::memory_order_relaxed); }
  uint64_t total_ns() const {
    return build_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> build_ns_{0};
};

/// Failure-containment context of one JoinBuild (all optional): the run's
/// CancelToken (barrier aborts, failure propagation), FaultInjector (the
/// build's named fault points), QueryLedger (directory + arena bytes are
/// charged to the query's memory budget), and NodeTelemetry sink + site id
/// (the build's wall span is recorded per plan node as the tuner's reward
/// signal; see runtime/tuner.h). Default-constructed = the ungoverned seed
/// behavior.
struct JoinBuildEnv {
  const CancelToken* cancel = nullptr;
  FaultInjector* fault = nullptr;
  QueryLedger* ledger = nullptr;
  NodeTelemetry* telemetry = nullptr;
  uint32_t site = 0;
};

/// Shared join-build protocol of both engines (one instance per hash table,
/// one Run() call per worker). The materialize phase stays engine-specific;
/// from the sizing barrier on, the path is common:
///
///   kCas          every worker CAS-inserts its own rows into the shared
///                 table — the seed protocol. Entries remain in the worker
///                 MemPool chunks, so chains pointer-chase across them.
///   kPartitioned  workers are assigned disjoint bucket ranges (by the hash
///                 bits that select the bucket). Each worker histograms the
///                 whole input for its range, the counts are prefix-summed
///                 at a barrier, and each worker then copies its range's
///                 rows into a contiguous bucket-ordered arena segment and
///                 links them with plain stores: a bucket's chain is a
///                 sequential run of rows, and no bucket word is ever
///                 touched by two cores.
///
/// The arena is owned here and must outlive the probes (both engines keep
/// the JoinBuild alive for the query). Chain contents are identical across
/// modes (same entries per bucket, same tag bits); only chain order and
/// entry placement differ, which no studied query observes.
///
/// Failure containment (JoinBuildEnv with a token): a worker whose phase
/// throws — injected fault, real bad_alloc from the directory/arena — marks
/// the build poisoned, Fail()s the token, and the exception never crosses a
/// barrier: the sizing/offset/final waits are token-aware
/// (Barrier::WaitOrAbort), so surviving workers abort instead of blocking
/// on the dead one, skip the guarded phases, and drain. The poisoned table
/// is never probed (the probing region observes the sticky trip before
/// claiming any morsel) and all charged bytes return on destruction.
/// Without a token the seed contract stands: an exception propagates and
/// the run fails fast.
class JoinBuild {
 public:
  JoinBuild(Hashmap* ht, size_t threads, JoinBuildEnv env = {})
      : ht_(ht), threads_(threads), env_(env), barrier_(threads),
        published_(threads), seg_counts_(threads), seg_offsets_(threads + 1) {}

  ~JoinBuild() {
    if (env_.ledger != nullptr && charged_ > 0) env_.ledger->Uncharge(charged_);
  }

  /// Executes the insert protocol for one worker: publishes `chunks`, meets
  /// the barrier that sizes the table, and inserts according to `mode`.
  /// `stride` is the row size (identical across workers).
  void Run(BuildMode mode, EntryChunkList chunks, size_t stride) {
    const size_t wid = arrivals_.fetch_add(1, std::memory_order_relaxed);
    VCQ_CHECK_MSG(wid < threads_, "JoinBuild::Run called more often than the "
                                  "thread count it was built for");
    published_[wid] = std::move(chunks);

    const BarrierStatus sizing = barrier_.WaitOrAbort(
        [&] {
          // The on_last body must not leak an exception through the
          // barrier on managed runs: followers would be released believing
          // the table was sized. Poison instead, so every worker skips the
          // insert phase, and re-raise only on unmanaged builds.
          try {
            FaultHit(env_.fault, "join_build.size", env_.cancel);
            start_ns_ = JoinBuildTelemetry::NowNs();
            stride_ = stride;
            total_ = 0;
            bool any_spilled = false;
            for (const EntryChunkList& list : published_) {
              total_ += list.total + list.spilled_rows;
              any_spilled |= list.spilled_rows > 0;
            }
            // Spilled rows force the partitioned protocol: kCas inserts
            // entries in place in the worker chunks, which spilled rows no
            // longer have — the partitioned passes stream every row (live
            // or spilled) into the arena regardless of where it lives.
            effective_mode_.store(
                any_spilled ? BuildMode::kPartitioned : mode,
                std::memory_order_release);
            // Budget-aware sizing: the directory and arena are the build's
            // big allocations, so re-check the token between them — a
            // budget already tripped by the materialize phase (or by the
            // directory charge itself) must not be overshot by the arena.
            if (Interrupted(env_.cancel)) {
              poisoned_.store(true, std::memory_order_release);
              return;
            }
            ht_->SetSize(total_);
            Charge(ht_->capacity() * sizeof(uintptr_t));
            if (effective_mode_.load(std::memory_order_relaxed) ==
                BuildMode::kPartitioned) {
              if (Interrupted(env_.cancel)) {
                poisoned_.store(true, std::memory_order_release);
                return;
              }
              arena_.reset(new std::byte[total_ * stride_]);
              Charge(total_ * stride_);
            }
          } catch (...) {
            poisoned_.store(true, std::memory_order_release);
            FailCurrentException(env_.cancel);
            if (env_.cancel == nullptr) throw;
          }
        },
        env_.cancel);

    if (sizing != BarrierStatus::kAborted &&
        !poisoned_.load(std::memory_order_acquire)) {
      try {
        FaultHit(env_.fault, "join_build.insert", env_.cancel);
        if (effective_mode_.load(std::memory_order_acquire) ==
            BuildMode::kCas) {
          for (const auto& [base, rows] : published_[wid].chunks) {
            for (size_t k = 0; k < rows; ++k) {
              ht_->Insert(
                  reinterpret_cast<Hashmap::EntryHeader*>(base + k * stride_));
            }
          }
        } else {
          InsertPartition(wid);
        }
        FaultHit(env_.fault, "join_build.finish", env_.cancel);
      } catch (...) {
        poisoned_.store(true, std::memory_order_release);
        FailCurrentException(env_.cancel);
        if (env_.cancel == nullptr) throw;
      }
    }

    barrier_.WaitOrAbort(
        [&] {
          const uint64_t span = JoinBuildTelemetry::NowNs() - start_ns_;
          JoinBuildTelemetry::Global().Add(span);
          if (env_.telemetry != nullptr && total_ > 0) {
            env_.telemetry->RecordSpan(env_.site, span, total_);
          }
          // After a partitioned build every entry lives in the arena, so
          // the published chunk lists are dead; drop them so the engines
          // can free the materialize-phase MemPool chunks they point into
          // (ROADMAP: ~2x transient build-side memory otherwise).
          if (effective_mode_.load(std::memory_order_relaxed) ==
              BuildMode::kPartitioned) {
            for (EntryChunkList& list : published_) list = EntryChunkList{};
          }
        },
        env_.cancel);
  }

  /// True once any worker's build phase failed; the table contents are
  /// undefined and must not be probed (the sticky token trip guarantees
  /// the probing region never starts).
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// True when probes only ever walk the contiguous arena, i.e. the
  /// materialize-phase chunks handed to Run() are no longer referenced and
  /// their memory can be released by the owning engine.
  static bool ReleasesChunks(BuildMode mode) {
    return mode == BuildMode::kPartitioned;
  }

  /// Instance flavor of ReleasesChunks, reflecting the EFFECTIVE protocol
  /// of this build: a kCas request is upgraded to kPartitioned when any
  /// worker spilled (decided under the sizing barrier), so engines must
  /// consult the build, not the requested mode, before freeing their
  /// materialize pools. Valid after Run returns; a build that failed
  /// before sizing reports kPartitioned (releasing is safe — a poisoned
  /// table is never probed).
  bool releases_chunks() const {
    return effective_mode_.load(std::memory_order_acquire) ==
           BuildMode::kPartitioned;
  }

  /// Total build-side rows (valid after Run returns).
  size_t entry_count() const { return total_; }
  /// Bucket-ordered entry arena (kPartitioned only; nullptr for kCas).
  const std::byte* arena() const { return arena_.get(); }

 private:
  /// Bucket range owned by worker `wid` (contiguous, covers the table).
  std::pair<size_t, size_t> RangeOf(size_t wid) const {
    const size_t cap = ht_->capacity();
    return {wid * cap / threads_, (wid + 1) * cap / threads_};
  }

  /// Streams every row of `list` — spilled segments first (re-read through
  /// `scratch` in write order), then the live chunks — through `fn`. Both
  /// partition passes already re-scan the whole input, so spilled rows just
  /// add a sequential file read per pass; each worker reads every file
  /// (O(T·N), same complexity as the existing chunk-list scans).
  template <typename Fn>
  void ForEachRow(const EntryChunkList& list, std::vector<std::byte>& scratch,
                  Fn&& fn) const {
    if (list.spill != nullptr && list.spilled_rows > 0) {
      for (const SpillFile::Segment& seg : list.spill->segments()) {
        scratch.resize(seg.bytes);
        list.spill->Read(seg, scratch.data());
        for (size_t k = 0; k < seg.rows; ++k) fn(scratch.data() + k * stride_);
      }
    }
    for (const auto& [base, rows] : list.chunks) {
      for (size_t k = 0; k < rows; ++k) fn(base + k * stride_);
    }
  }

  void InsertPartition(size_t wid) {
    const auto [lo, hi] = RangeOf(wid);
    std::vector<std::byte> scratch;
    // Pass 1: histogram this worker's bucket range over the whole input,
    // accumulating each bucket's tag bits along the way.
    std::vector<uint32_t> hist(hi - lo, 0);
    std::vector<uintptr_t> tags(hi - lo, 0);
    size_t mine = 0;
    for (const EntryChunkList& list : published_) {
      ForEachRow(list, scratch, [&](const std::byte* row) {
        const auto* e = reinterpret_cast<const Hashmap::EntryHeader*>(row);
        const size_t b = ht_->BucketOf(e->hash);
        if (b - lo < hi - lo) {
          ++hist[b - lo];
          tags[b - lo] |= Hashmap::TagOf(e->hash);
          ++mine;
        }
      });
    }
    seg_counts_[wid] = mine;
    const BarrierStatus offsets = barrier_.WaitOrAbort(
        [&] {
          seg_offsets_[0] = 0;
          for (size_t w = 0; w < threads_; ++w)
            seg_offsets_[w + 1] = seg_offsets_[w] + seg_counts_[w];
        },
        env_.cancel);
    // An abort here means some sibling died before arriving (its histogram
    // never landed in seg_counts_): the offsets were never computed, so
    // writing the arena would scribble over other workers' segments. Bail;
    // the caller's final barrier also aborts on the same sticky trip.
    if (offsets == BarrierStatus::kAborted ||
        poisoned_.load(std::memory_order_acquire)) {
      return;
    }

    // Per-bucket arena row offsets (exclusive prefix over the histogram,
    // starting at this worker's segment); each non-empty bucket's word is
    // published once — chain head plus accumulated tags.
    std::vector<size_t> start(hi - lo);
    size_t off = seg_offsets_[wid];
    for (size_t j = 0; j < hi - lo; ++j) {
      start[j] = off;
      off += hist[j];
      if (hist[j] > 0) {
        ht_->SetBucketOwned(lo + j,
                            reinterpret_cast<Hashmap::EntryHeader*>(
                                arena_.get() + start[j] * stride_),
                            tags[j]);
      }
    }

    // Pass 2: copy + link. A bucket's rows are consecutive, so each
    // entry's successor is simply the next arena row.
    std::vector<uint32_t> filled(hi - lo, 0);
    for (const EntryChunkList& list : published_) {
      ForEachRow(list, scratch, [&](const std::byte* src) {
        const uint64_t hash =
            reinterpret_cast<const Hashmap::EntryHeader*>(src)->hash;
        const size_t b = ht_->BucketOf(hash);
        if (b - lo >= hi - lo) return;
        const size_t j = b - lo;
        const size_t slot = start[j] + filled[j]++;
        std::byte* dst = arena_.get() + slot * stride_;
        std::memcpy(dst, src, stride_);
        auto* header = reinterpret_cast<Hashmap::EntryHeader*>(dst);
        header->next =
            filled[j] < hist[j]
                ? reinterpret_cast<Hashmap::EntryHeader*>(dst + stride_)
                : nullptr;
      });
    }
  }

  /// Books `bytes` against the run's memory budget (sizing on_last only —
  /// single-threaded by construction, so the plain charged_ accumulation
  /// is safe); the destructor returns the total.
  void Charge(size_t bytes) {
    if (env_.ledger == nullptr) return;
    charged_ += bytes;
    env_.ledger->Charge(bytes);
  }

  Hashmap* ht_;
  const size_t threads_;
  JoinBuildEnv env_;
  std::atomic<bool> poisoned_{false};
  // Effective protocol: the requested mode, upgraded to kPartitioned when
  // any worker spilled (written once under the sizing barrier's on_last).
  std::atomic<BuildMode> effective_mode_{BuildMode::kPartitioned};
  size_t charged_ = 0;  // written only under the sizing barrier's on_last
  Barrier barrier_;
  std::atomic<size_t> arrivals_{0};
  std::vector<EntryChunkList> published_;
  std::vector<size_t> seg_counts_;
  std::vector<size_t> seg_offsets_;
  size_t stride_ = 0;
  size_t total_ = 0;
  std::unique_ptr<std::byte[]> arena_;
  uint64_t start_ns_ = 0;  // written/read only under the barrier's on_last
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_HASHMAP_H_
