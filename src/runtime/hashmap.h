#ifndef VCQ_RUNTIME_HASHMAP_H_
#define VCQ_RUNTIME_HASHMAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/bit_util.h"
#include "common/check.h"

namespace vcq::runtime {

/// Chaining hash table shared by Typer and Tectorwise (paper §3.2): a bucket
/// array of tagged pointers plus externally allocated entries (row format,
/// MemPool). The upper 16 bits of each bucket pointer encode a small
/// Bloom-filter-like tag ("using 16 unused bits of each pointer"), so a
/// probe miss usually skips the collision chain entirely — this is what
/// makes selective joins cheap in both engines.
///
/// The table itself is key-agnostic: operators define their own entry
/// layouts that start with EntryHeader and do their own key comparisons,
/// which is precisely the paper's framing (Typer fuses the comparison into
/// the probe loop; Tectorwise runs one compare primitive per key column).
class Hashmap {
 public:
  struct EntryHeader {
    EntryHeader* next;
    uint64_t hash;
  };

  static constexpr uintptr_t kPtrMask = (uintptr_t{1} << 48) - 1;

  Hashmap() = default;
  Hashmap(const Hashmap&) = delete;
  Hashmap& operator=(const Hashmap&) = delete;

  /// Sizes the bucket array for `entry_count` entries (load factor <= 0.5).
  /// Not thread-safe; call once before the parallel build phase.
  void SetSize(size_t entry_count) {
    capacity_ = NextPow2(entry_count * 2);
    mask_ = capacity_ - 1;
    buckets_ = std::make_unique<std::atomic<uintptr_t>[]>(capacity_);
    for (size_t i = 0; i < capacity_; ++i)
      buckets_[i].store(0, std::memory_order_relaxed);
  }

  void Clear() {
    for (size_t i = 0; i < capacity_; ++i)
      buckets_[i].store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Bloom tag derived from the hash's top 4 bits: one of 16 bits in the
  /// pointer's upper 16 bits.
  static uintptr_t TagOf(uint64_t hash) {
    return uintptr_t{1} << (48 + (hash >> 60));
  }

  static EntryHeader* Ptr(uintptr_t bucket) {
    return reinterpret_cast<EntryHeader*>(bucket & kPtrMask);
  }

  size_t BucketOf(uint64_t hash) const { return hash & mask_; }

  /// Chain head with Bloom pre-filter: returns nullptr without touching the
  /// chain when the tag bit for this hash is absent.
  EntryHeader* FindChainTagged(uint64_t hash) const {
    const uintptr_t b =
        buckets_[BucketOf(hash)].load(std::memory_order_relaxed);
    return (b & TagOf(hash)) ? Ptr(b) : nullptr;
  }

  /// Chain head without the filter (used by the tag-ablation bench).
  EntryHeader* FindChain(uint64_t hash) const {
    return Ptr(buckets_[BucketOf(hash)].load(std::memory_order_relaxed));
  }

  /// Thread-safe insert via CAS; preserves existing tag bits and adds the
  /// entry's own. `e->hash` must already be set.
  void Insert(EntryHeader* e) {
    std::atomic<uintptr_t>& slot = buckets_[BucketOf(e->hash)];
    const uintptr_t tag = TagOf(e->hash);
    uintptr_t old = slot.load(std::memory_order_relaxed);
    uintptr_t desired;
    do {
      e->next = Ptr(old);
      desired = reinterpret_cast<uintptr_t>(e) | (old & ~kPtrMask) | tag;
    } while (!slot.compare_exchange_weak(old, desired,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  /// Single-threaded insert (no CAS); for serial builds and tests.
  void InsertUnlocked(EntryHeader* e) {
    std::atomic<uintptr_t>& slot = buckets_[BucketOf(e->hash)];
    const uintptr_t old = slot.load(std::memory_order_relaxed);
    e->next = Ptr(old);
    slot.store(reinterpret_cast<uintptr_t>(e) | (old & ~kPtrMask) |
                   TagOf(e->hash),
               std::memory_order_relaxed);
  }

  /// Raw bucket array (SIMD gather probing, Fig. 8/9).
  const std::atomic<uintptr_t>* buckets() const { return buckets_.get(); }
  uint64_t mask() const { return mask_; }

 private:
  std::unique_ptr<std::atomic<uintptr_t>[]> buckets_;
  size_t capacity_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_HASHMAP_H_
