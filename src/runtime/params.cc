#include "runtime/params.h"

#include "common/check.h"
#include "runtime/types.h"

namespace vcq::runtime {

const char* ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kInt: return "int";
    case ParamType::kDate: return "date";
    case ParamType::kString: return "string";
  }
  return "?";
}

QueryParams& QueryParams::SetInt(std::string_view name, int64_t value) {
  Value& v = values_[std::string(name)];
  v = Value{ParamType::kInt, value, {}};
  return *this;
}

QueryParams& QueryParams::SetDate(std::string_view name,
                                  std::string_view iso_date) {
  Value& v = values_[std::string(name)];
  v = Value{ParamType::kDate, DateFromString(iso_date), {}};
  return *this;
}

QueryParams& QueryParams::SetDateDays(std::string_view name, int32_t days) {
  Value& v = values_[std::string(name)];
  v = Value{ParamType::kDate, days, {}};
  return *this;
}

QueryParams& QueryParams::SetString(std::string_view name,
                                    std::string_view value) {
  Value& v = values_[std::string(name)];
  v = Value{ParamType::kString, 0, std::string(value)};
  return *this;
}

bool QueryParams::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

const QueryParams::Value& QueryParams::Find(std::string_view name) const {
  const auto it = values_.find(name);
  VCQ_CHECK_MSG(it != values_.end(),
                "query parameter is not bound (prepared queries resolve "
                "every parameter a plan reads; bind it or go through "
                "vcq::Session, which merges the catalog defaults)");
  return it->second;
}

ParamType QueryParams::TypeOf(std::string_view name) const {
  return Find(name).type;
}

int64_t QueryParams::Int(std::string_view name) const {
  const Value& v = Find(name);
  VCQ_CHECK_MSG(v.type == ParamType::kInt || v.type == ParamType::kDate,
                "query parameter is bound as a string, not a number");
  return v.i;
}

int32_t QueryParams::Date(std::string_view name) const {
  const Value& v = Find(name);
  VCQ_CHECK_MSG(v.type == ParamType::kDate,
                "query parameter is not bound as a date");
  return static_cast<int32_t>(v.i);
}

const std::string& QueryParams::Str(std::string_view name) const {
  const Value& v = Find(name);
  VCQ_CHECK_MSG(v.type == ParamType::kString,
                "query parameter is not bound as a string");
  return v.s;
}

std::vector<std::string> QueryParams::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, v] : values_) names.push_back(name);
  return names;
}

std::string QueryParams::ToString() const {
  std::string out;
  for (const auto& [name, v] : values_) {
    if (!out.empty()) out += " ";
    out += name + "=";
    switch (v.type) {
      case ParamType::kInt: out += std::to_string(v.i); break;
      case ParamType::kDate:
        out += DateToString(static_cast<int32_t>(v.i));
        break;
      case ParamType::kString: out += "'" + v.s + "'"; break;
    }
  }
  return out;
}

}  // namespace vcq::runtime
