#ifndef VCQ_RUNTIME_PARAMS_H_
#define VCQ_RUNTIME_PARAMS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vcq::runtime {

/// Value kinds a query parameter can take. Dates are stored as the day
/// number the engines compare against (runtime::DateFromString); integers
/// cover the fixed-point columns at their schema scale (e.g. a discount of
/// 0.05 is the int 5 at scale 2 — the same representation the engines use
/// everywhere, so bindings never round).
enum class ParamType { kInt, kDate, kString };

const char* ParamTypeName(ParamType type);

/// An ordered bag of named parameter bindings, shared by every engine: the
/// prepared plans read predicate constants from here at execution time
/// instead of baking them in at plan-build time. The bag itself is dumb —
/// validation against a query's declared parameters happens in
/// vcq::PreparedQuery (api/session.h), which also merges in the catalog
/// defaults so engines can require every parameter they read to be bound.
class QueryParams {
 public:
  QueryParams& SetInt(std::string_view name, int64_t value);
  /// Parses an ISO date ("YYYY-MM-DD") to the engines' day-number form.
  QueryParams& SetDate(std::string_view name, std::string_view iso_date);
  /// Binds an already-converted day number (copying a validated binding
  /// without the format/parse round trip).
  QueryParams& SetDateDays(std::string_view name, int32_t days);
  QueryParams& SetString(std::string_view name, std::string_view value);

  bool Has(std::string_view name) const;
  /// Check-fails when `name` is unbound.
  ParamType TypeOf(std::string_view name) const;

  /// Integer value of a kInt or kDate binding; check-fails otherwise.
  int64_t Int(std::string_view name) const;
  /// Day number of a kDate binding; check-fails otherwise.
  int32_t Date(std::string_view name) const;
  /// String value of a kString binding; check-fails otherwise.
  const std::string& Str(std::string_view name) const;

  size_t size() const { return values_.size(); }
  /// Bound names in name order (validation / introspection).
  std::vector<std::string> Names() const;
  /// "name=value name=value ..." in name order (bench/debug output).
  std::string ToString() const;

  friend bool operator==(const QueryParams&, const QueryParams&) = default;

 private:
  struct Value {
    ParamType type = ParamType::kInt;
    int64_t i = 0;
    std::string s;
    friend bool operator==(const Value&, const Value&) = default;
  };

  const Value& Find(std::string_view name) const;

  std::map<std::string, Value, std::less<>> values_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_PARAMS_H_
