#ifndef VCQ_RUNTIME_SCHEDULER_H_
#define VCQ_RUNTIME_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/cancel.h"

// The query scheduler: gang-scheduled parallel regions over a FIXED worker
// set, weighted fair queueing between sessions, and admission control for
// whole executions.
//
// Why gang scheduling. A query executes as a sequence of parallel regions
// (one per pipeline); regions contain barriers, so every worker slot of a
// region must run on a distinct thread before any of them can finish. The
// previous WorkerPool kept that invariant by *growing* its thread set to
// peak concurrent demand — unbounded threads under load. The Scheduler
// instead admits a region's slot bundle all-or-nothing: a region is
// dispatched only when enough workers are free to cover every slot at
// once, so barriers can never deadlock and the thread count stays at the
// configured capacity no matter how many executions are in flight.
// Undispatched regions wait in per-stream queues; the submitting thread
// itself acts as worker 0 once the region is admitted.
//
// Fairness. Pending regions are ordered by weighted fair queueing over
// streams (one stream per vcq::Session): each stream carries a virtual
// pass that advances by 1/weight per dispatched region, and dispatch picks
// the backlogged stream with the smallest pass — so a stream of weight w
// receives region dispatches in proportion w when everything is
// backlogged, and a short query's regions no longer wait behind a long
// analytical query's FIFO backlog. Ties break toward the smaller
// remaining-work hint (shortest-remaining-region), then stream id.
// SchedPolicy::kFifo restores global arrival order (the seed behavior,
// kept as the ablation baseline for bench/ablation_scheduler).
//
// Admission. Admit() bounds in-flight executions: beyond the limit,
// callers wait in a bounded queue; beyond the queue, they get an
// immediate ExecStatus::kRejected (backpressure instead of unbounded
// queueing). The wait honors the execution's CancelToken.
//
// Tenant isolation and brown-out. Admission is stream-aware: each stream
// (session) may carry its own quota — a cap on its concurrently admitted
// executions and on their in-flight estimated bytes (SetStreamQuota) — so
// one tenant saturating the server queues behind its own quota instead of
// starving everyone else. Under sustained overload the scheduler browns
// out rather than failing uniformly: when the admission queue's occupancy
// crosses SetBrownout's threshold, NEW arrivals from the stream holding
// the most in-flight memory (the heaviest tenant, ties by in-flight
// count) are shed with kRejected while lighter tenants still queue — the
// heaviest load source absorbs the backpressure first, which is both the
// fairest place to shed and the fastest way to relieve pressure.

namespace vcq::runtime {

/// Scheduling metadata of one parallel region, carried from QueryOptions
/// by the WorkerPool facade.
struct RegionInfo {
  /// Scheduling stream (weighted fair queueing unit; one per
  /// vcq::Session). 0 — or a destroyed stream's stale id — falls back to
  /// the shared default stream of weight 1.
  uint64_t stream = 0;
  /// Remaining-work hint in tuples (the region's scan size); used as the
  /// shortest-remaining-region tie-break between equal-pass streams.
  /// 0 = unknown (sorts first).
  size_t work = 0;
  /// The owning execution's CancelToken. This is what makes the region
  /// failure-containable: an exception escaping any worker slot (bad_alloc,
  /// injected fault) is caught by the scheduler's backstop, converted to a
  /// sticky Fail() on this token (kResourceExhausted / kInternalError), and
  /// rethrown nowhere — surviving slots abort their barrier waits
  /// (Barrier::WaitOrAbort polls the same token), drain at the next morsel
  /// poll, and the region completes normally. nullptr = unmanaged: a
  /// worker-slot exception is stashed and rethrown from the Run() caller
  /// after the region drains (fail-fast for non-API entry points).
  const CancelToken* cancel = nullptr;
};

enum class SchedPolicy {
  kWeightedFair,  ///< Per-stream WFQ + shortest-remaining tie-break.
  kFifo,          ///< Global arrival order (seed behavior; ablation base).
};

class Scheduler {
 public:
  /// `thread_count` fixes the gang worker set (threads are spawned lazily
  /// but never beyond it). 0 picks the hardware default:
  /// max(hardware_concurrency, 16) — the floor covers the studied
  /// workload's widest region on small CI hosts.
  explicit Scheduler(size_t thread_count = 0);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // --- streams (weighted fair queueing) ---------------------------------

  /// Registers a scheduling stream with the given weight; returns its id.
  uint64_t CreateStream(double weight = 1.0);
  /// Updates a stream's weight (takes effect on the next dispatch).
  void SetStreamWeight(uint64_t stream, double weight);
  /// Removes a stream. Pending regions already queued on it drain first;
  /// later Run() calls naming the id fall back to the default stream.
  void DestroyStream(uint64_t stream);
  /// Current weight (default-stream weight for unknown ids).
  double StreamWeight(uint64_t stream) const;

  // --- parallel regions -------------------------------------------------

  /// Runs fn(worker_id) on `thread_count` workers and blocks until all
  /// return; worker ids are dense in [0, thread_count) and the caller acts
  /// as worker 0. thread_count == 1 runs inline (no handoff). Wider
  /// regions are gang-admitted: the caller blocks until thread_count - 1
  /// workers are reserved, then every slot runs concurrently — which is
  /// what makes in-region barriers safe. Check-fails when
  /// thread_count - 1 exceeds the scheduler's capacity (size the region
  /// with QueryOptions::threads <= capacity; vcq::Session clamps this at
  /// Prepare time).
  void Run(size_t thread_count, const std::function<void(size_t)>& fn,
           const RegionInfo& info = {});

  /// Enqueues a detached coordination task (the body of
  /// PreparedQuery::ExecuteAsync). Coordinators run on a separate cached
  /// thread set — NOT on gang workers: a coordinator blocks in Run()
  /// waiting for gang admission, and parking it on a gang worker would
  /// shrink the very set it is waiting for (deadlock once every worker
  /// coordinates). Coordinator threads grow to peak concurrent Submit()s
  /// and are reused; bound them by bounding in-flight executions
  /// (SetAdmissionLimit).
  void Submit(std::function<void()> task);

  // --- admission control ------------------------------------------------

  /// RAII grant for one in-flight execution (released on destruction).
  class Admission {
   public:
    Admission() = default;
    ~Admission() { Release(); }
    Admission(Admission&& other) noexcept { *this = std::move(other); }
    Admission& operator=(Admission&& other) noexcept {
      if (this != &other) {
        Release();
        sched_ = other.sched_;
        bytes_ = other.bytes_;
        stream_ = other.stream_;
        status_ = other.status_;
        other.sched_ = nullptr;
      }
      return *this;
    }

    /// True when the execution was admitted; false carries the rejection
    /// status (kRejected; kResourceExhausted when the estimate can never
    /// fit the byte budget; or kCancelled / kDeadlineExceeded when the
    /// token tripped while waiting in the admission queue).
    bool ok() const { return sched_ != nullptr; }
    ExecStatus status() const { return status_; }
    void Release();

   private:
    friend class Scheduler;
    explicit Admission(ExecStatus rejection) : status_(rejection) {}
    Admission(Scheduler* sched, size_t bytes, uint64_t stream)
        : sched_(sched), bytes_(bytes), stream_(stream) {}
    Scheduler* sched_ = nullptr;
    size_t bytes_ = 0;
    uint64_t stream_ = 0;
    ExecStatus status_ = ExecStatus::kOk;
  };

  /// Bounds in-flight executions: up to `max_inflight` admitted at once,
  /// up to `max_queue` callers waiting; anything beyond is rejected
  /// immediately. max_inflight == 0 disables the limit (the default).
  void SetAdmissionLimit(size_t max_inflight, size_t max_queue);

  /// Bounds the estimated build bytes of concurrently admitted executions
  /// (memory-aware admission): an execution whose `estimated_bytes` would
  /// push the in-flight sum past the budget waits in the same bounded
  /// queue instead of overcommitting; one whose estimate exceeds the
  /// budget outright is rejected immediately with kResourceExhausted (it
  /// can never fit). 0 disables (the default). Estimates come from the
  /// query catalog's build-side footprints (vcq::EstimatedBuildBytes).
  void SetMemoryBudget(size_t bytes);
  size_t memory_budget() const;
  /// Estimated bytes of currently admitted executions (introspection).
  size_t memory_inflight() const;

  /// Per-stream admission quota (tenant isolation): at most `max_inflight`
  /// of `stream`'s executions admitted at once and at most `max_bytes` of
  /// their estimated bytes in flight (0 disables either bound). Excess
  /// executions wait in the shared bounded queue; one whose estimate
  /// exceeds the byte quota outright fails fast with kResourceExhausted.
  void SetStreamQuota(uint64_t stream, size_t max_inflight, size_t max_bytes);

  /// Overload brown-out: when the admission queue's occupancy reaches
  /// `threshold` (fraction of the bounded queue, e.g. 0.75) and the
  /// admission queue is bounded, new arrivals from the heaviest stream —
  /// most in-flight estimated bytes, ties by in-flight count; only streams
  /// with at least one admitted execution qualify — are shed with
  /// kRejected instead of queueing. 0 disables (the default).
  void SetBrownout(double threshold);
  /// Executions shed by the brown-out policy so far.
  uint64_t shed_count() const;

  /// Admits one execution, waiting in the bounded queue if needed. The
  /// wait honors `cancel` (nullptr = wait indefinitely for a slot).
  /// `estimated_bytes` counts against the memory budget — and against
  /// `stream`'s quota, when one is set — until the returned Admission is
  /// released.
  Admission Admit(const CancelToken* cancel, size_t estimated_bytes = 0,
                  uint64_t stream = 0);

  // --- policy / introspection -------------------------------------------

  void SetPolicy(SchedPolicy policy);

  /// The fixed gang capacity (upper bound on worker threads, ever).
  size_t thread_count() const { return capacity_; }
  /// Gang worker threads spawned so far (<= thread_count()).
  size_t worker_threads() const;
  /// Coordinator threads spawned so far (Submit bodies; see Submit()).
  size_t coordinator_threads() const;
  /// Regions waiting for gang admission across all streams.
  size_t queued_regions() const;
  /// Regions ever dispatched from `stream` (fairness tests).
  uint64_t regions_dispatched(uint64_t stream) const;
  /// Currently admitted executions / callers waiting for admission.
  size_t inflight() const;
  size_t admission_waiting() const;
  /// Currently admitted executions / in-flight estimated bytes of one
  /// stream (0 for streams with nothing admitted and no quota).
  size_t stream_inflight(uint64_t stream) const;
  size_t stream_inflight_bytes(uint64_t stream) const;

 private:
  struct Region {
    const std::function<void(size_t)>* fn = nullptr;
    size_t slots = 0;      // pool-side slots (width - 1)
    size_t next_slot = 0;  // slots claimed so far
    size_t remaining = 0;  // claimed-or-not slots still unfinished
    bool dispatched = false;
    size_t work = 0;
    uint64_t seq = 0;  // global arrival order (kFifo, same-stream FIFO)
    const CancelToken* cancel = nullptr;  // failure-containment token
    std::exception_ptr error;  // first unmanaged slot failure (mutex_)
  };

  struct Stream {
    double weight = 1.0;
    double pass = 0.0;
    uint64_t dispatched = 0;
    std::deque<std::shared_ptr<Region>> queue;
  };

  /// Admission-side per-stream accounting (guarded by adm_mutex_; distinct
  /// from the dispatch-side Stream above, which is guarded by mutex_).
  /// Entries exist while a quota is configured or something is in flight.
  struct AdmStream {
    size_t inflight = 0;
    size_t bytes = 0;         // in-flight estimated bytes
    size_t max_inflight = 0;  // 0 = unlimited
    size_t max_bytes = 0;     // 0 = unlimited
  };

  void WorkerLoop();
  void CoordinatorLoop();
  void TryDispatchLocked();
  Stream& StreamForLocked(uint64_t id);
  void ReleaseAdmission(size_t bytes, uint64_t stream);
  /// Runs one region slot with the exception backstop (see RegionInfo).
  void RunSlot(Region* region, size_t worker_id);

  const size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      // workers wait for ready slots
  std::condition_variable dispatch_cv_;  // Run callers wait for admission
  std::condition_variable done_cv_;      // Run callers wait for completion
  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Region>> ready_;  // dispatched, unclaimed slots
  std::unordered_map<uint64_t, Stream> streams_;
  SchedPolicy policy_ = SchedPolicy::kWeightedFair;
  double virtual_time_ = 0.0;
  uint64_t next_stream_ = 1;
  uint64_t next_seq_ = 0;
  size_t busy_ = 0;      // workers currently executing a slot
  size_t reserved_ = 0;  // dispatched-but-unclaimed slots
  size_t queued_ = 0;    // regions waiting for admission
  bool shutdown_ = false;

  mutable std::mutex coord_mutex_;
  std::condition_variable coord_cv_;
  std::vector<std::thread> coordinators_;
  std::deque<std::function<void()>> coord_queue_;
  size_t coord_idle_ = 0;

  mutable std::mutex adm_mutex_;
  std::condition_variable adm_cv_;
  size_t max_inflight_ = 0;  // 0 = unlimited
  size_t max_adm_queue_ = 0;
  size_t inflight_ = 0;
  size_t adm_waiting_ = 0;
  size_t mem_budget_ = 0;    // 0 = unlimited (estimated bytes)
  size_t mem_inflight_ = 0;  // estimated bytes of admitted executions
  std::unordered_map<uint64_t, AdmStream> adm_streams_;
  double brownout_threshold_ = 0.0;  // 0 = brown-out disabled
  uint64_t shed_count_ = 0;          // executions shed by brown-out
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_SCHEDULER_H_
