#include "runtime/hash.h"

#include <cstring>

namespace vcq::runtime {

uint64_t HashBytes(const void* data, size_t len) {
  constexpr uint64_t m = kMurmurMul;
  constexpr int r = 47;
  uint64_t h = 0x8445d61a4e774912ull ^ (len * m);
  const auto* p = static_cast<const unsigned char*>(data);
  const auto* end = p + (len & ~size_t{7});
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
    p += 8;
  }
  uint64_t tail = 0;
  std::memcpy(&tail, p, len & 7);
  if ((len & 7) != 0) {
    h ^= tail;
    h *= m;
  }
  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

}  // namespace vcq::runtime
