#ifndef VCQ_RUNTIME_WORKER_POOL_H_
#define VCQ_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcq::runtime {

/// Work distribution unit for morsel-driven parallelism (paper §6.1,
/// following HyPer's design): workers pull fixed-size tuple ranges from a
/// shared atomic cursor until the input is exhausted, which load-balances
/// automatically. Both engines use this — the parallelization framework is
/// deliberately identical (paper §3).
class MorselQueue {
 public:
  static constexpr size_t kDefaultGrain = 16384;

  explicit MorselQueue(size_t total, size_t grain = kDefaultGrain)
      : total_(total), grain_(grain == 0 ? kDefaultGrain : grain) {}

  /// Claims the next [begin, end) range; returns false when drained.
  bool Next(size_t& begin, size_t& end) {
    const size_t b = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (b >= total_) return false;
    begin = b;
    end = std::min(b + grain_, total_);
    return true;
  }

  void Reset() { next_.store(0, std::memory_order_relaxed); }

  size_t total() const { return total_; }
  size_t grain() const { return grain_; }

 private:
  std::atomic<size_t> next_{0};
  const size_t total_;
  const size_t grain_;
};

/// Persistent thread pool that broadcasts one job to N workers and joins
/// them. Queries run as a sequence of such parallel regions (one per
/// pipeline), with Barrier ordering the phases inside a region.
class WorkerPool {
 public:
  /// Process-wide pool (threads are created lazily, reused across queries).
  static WorkerPool& Global();

  WorkerPool();
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(worker_id) on `thread_count` workers and blocks until all
  /// return. worker_id is dense in [0, thread_count). With thread_count == 1
  /// the job runs inline on the caller (clean single-threaded measurements:
  /// no handoff, no wakeup latency). Concurrent Run calls from different
  /// threads are serialized: queries issued in parallel execute one after
  /// another on the pool, each with correct results.
  void Run(size_t thread_count, const std::function<void(size_t)>& fn);

  size_t max_threads() const { return max_threads_; }

 private:
  void WorkerLoop(size_t pool_index);
  void EnsureThreads(size_t needed);

  std::vector<std::thread> threads_;
  std::mutex run_mutex_;  // serializes concurrent Run() callers
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_threads_ = 0;     // workers participating in current job
  size_t job_generation_ = 0;  // bumped per job
  size_t job_remaining_ = 0;
  bool shutdown_ = false;
  size_t max_threads_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_WORKER_POOL_H_
