#ifndef VCQ_RUNTIME_WORKER_POOL_H_
#define VCQ_RUNTIME_WORKER_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>

#include "runtime/options.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

namespace vcq::runtime {

/// Work distribution unit for morsel-driven parallelism (paper §6.1,
/// following HyPer's design): workers pull fixed-size tuple ranges from a
/// shared atomic cursor until the input is exhausted, which load-balances
/// automatically. Both engines use this — the parallelization framework is
/// deliberately identical (paper §3).
class MorselQueue {
 public:
  static constexpr size_t kDefaultGrain = 16384;

  explicit MorselQueue(size_t total, size_t grain = kDefaultGrain)
      : total_(total), grain_(grain == 0 ? kDefaultGrain : grain) {}

  /// Claims the next [begin, end) range; returns false when drained.
  bool Next(size_t& begin, size_t& end) {
    const size_t b = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (b >= total_) return false;
    begin = b;
    end = std::min(b + grain_, total_);
    return true;
  }

  void Reset() { next_.store(0, std::memory_order_relaxed); }

  size_t total() const { return total_; }
  size_t grain() const { return grain_; }

 private:
  std::atomic<size_t> next_{0};
  const size_t total_;
  const size_t grain_;
};

/// Thin facade over runtime::Scheduler, keeping the pool-shaped surface
/// every engine call site uses. A WorkerPool owns one Scheduler with a
/// FIXED gang worker set: parallel regions are gang-admitted all-or-nothing
/// (barriers can never deadlock) and the worker thread count is bounded at
/// the construction capacity no matter how many prepared queries are in
/// flight — the old pool's grow-to-peak-demand coverage invariant is gone.
/// Queued regions are ordered by per-session weighted fair queueing; see
/// scheduler.h for the full model (fairness, admission control,
/// cancellation all live there).
class WorkerPool {
 public:
  /// Process-wide pool (lazily spawned, reused across queries; capacity
  /// max(hardware_concurrency, 16) — see Scheduler).
  static WorkerPool& Global();

  WorkerPool() : sched_(0) {}
  /// A pool whose gang worker set is fixed at `scheduler_threads`.
  explicit WorkerPool(size_t scheduler_threads) : sched_(scheduler_threads) {}
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(worker_id) on `thread_count` workers and blocks until all
  /// return. worker_id is dense in [0, thread_count); the caller acts as
  /// worker 0. With thread_count == 1 the job runs inline on the caller
  /// (clean single-threaded measurements: no handoff, no wakeup latency).
  /// The region is charged to the scheduler's default stream.
  void Run(size_t thread_count, const std::function<void(size_t)>& fn) {
    sched_.Run(thread_count, fn);
  }

  /// As above with explicit scheduling metadata (stream + work hint).
  void Run(size_t thread_count, const std::function<void(size_t)>& fn,
           const RegionInfo& info) {
    sched_.Run(thread_count, fn, info);
  }

  /// The engine spelling: a parallel region of opt.threads workers,
  /// charged to opt.sched_stream (the owning vcq::Session) with `work` as
  /// its remaining-work hint in tuples (the shortest-remaining-region
  /// tie-break between equal-weight sessions). The run's CancelToken rides
  /// along as the region's failure-containment token: a worker exception
  /// becomes a sticky Fail() on it instead of a process abort (see
  /// RegionInfo::cancel).
  void Run(const QueryOptions& opt, size_t work,
           const std::function<void(size_t)>& fn) {
    // Traced runs record one per-worker span per parallel region
    // ("pipeline#k") plus worker 0's dispatch wait — this facade is the
    // one choke point every engine's regions pass through, so Typer's
    // fused pipelines get spans without per-query instrumentation.
    if (QueryTrace* trace = opt.trace_sink; trace != nullptr) {
      const uint32_t region = trace->BeginRegion();
      const uint64_t enter_ns = QueryTrace::NowNs();
      const auto traced = [&fn, trace, region, work,
                           enter_ns](size_t worker_id) {
        const uint64_t start_ns = QueryTrace::NowNs();
        if (worker_id == 0 && start_ns > enter_ns) {
          TraceSpan wait;
          wait.cat = "sched";
          wait.name = "gang.dispatch#" + std::to_string(region);
          wait.start_ns = enter_ns;
          wait.end_ns = start_ns;
          wait.site = region;
          trace->AddLaneSpan(0, std::move(wait));
        }
        fn(worker_id);
        TraceSpan span;
        span.cat = "pipeline";
        span.name = "pipeline#" + std::to_string(region);
        span.start_ns = start_ns;
        span.end_ns = QueryTrace::NowNs();
        span.site = region;
        span.tuples = work;
        trace->AddLaneSpan(static_cast<uint32_t>(worker_id),
                           std::move(span));
      };
      sched_.Run(opt.threads, traced,
                 RegionInfo{opt.sched_stream, work, opt.cancel});
      return;
    }
    sched_.Run(opt.threads, fn, RegionInfo{opt.sched_stream, work, opt.cancel});
  }

  /// Enqueues a detached one-shot task (the coordination body of
  /// PreparedQuery::ExecuteAsync) on the scheduler's coordinator threads —
  /// never on gang workers (see Scheduler::Submit).
  void Submit(std::function<void()> task) { sched_.Submit(std::move(task)); }

  /// The scheduler behind this pool (streams, admission, policy).
  Scheduler& scheduler() { return sched_; }
  const Scheduler& scheduler() const { return sched_; }

  /// Advisory hardware parallelism (not the gang capacity — see
  /// scheduler().thread_count() for the bound).
  size_t max_threads() const {
    return std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  /// Gang worker threads spawned so far (<= scheduler().thread_count()).
  size_t spawned_threads() const { return sched_.worker_threads(); }

 private:
  Scheduler sched_;
};

/// The pool a run should execute on: the options' session pool when set,
/// the process-global pool otherwise.
inline WorkerPool& PoolFor(const QueryOptions& opt) {
  return opt.pool != nullptr ? *opt.pool : WorkerPool::Global();
}

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_WORKER_POOL_H_
