#ifndef VCQ_RUNTIME_WORKER_POOL_H_
#define VCQ_RUNTIME_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/options.h"

namespace vcq::runtime {

/// Work distribution unit for morsel-driven parallelism (paper §6.1,
/// following HyPer's design): workers pull fixed-size tuple ranges from a
/// shared atomic cursor until the input is exhausted, which load-balances
/// automatically. Both engines use this — the parallelization framework is
/// deliberately identical (paper §3).
class MorselQueue {
 public:
  static constexpr size_t kDefaultGrain = 16384;

  explicit MorselQueue(size_t total, size_t grain = kDefaultGrain)
      : total_(total), grain_(grain == 0 ? kDefaultGrain : grain) {}

  /// Claims the next [begin, end) range; returns false when drained.
  bool Next(size_t& begin, size_t& end) {
    const size_t b = next_.fetch_add(grain_, std::memory_order_relaxed);
    if (b >= total_) return false;
    begin = b;
    end = std::min(b + grain_, total_);
    return true;
  }

  void Reset() { next_.store(0, std::memory_order_relaxed); }

  size_t total() const { return total_; }
  size_t grain() const { return grain_; }

 private:
  std::atomic<size_t> next_{0};
  const size_t total_;
  const size_t grain_;
};

/// Persistent thread pool shared by every query of a vcq::Session (and,
/// through the process-global instance, by every one-shot RunQuery call).
/// Threads are created once and reused across queries.
///
/// A query executes as a sequence of parallel regions (one per pipeline):
/// Run(n, fn) hands out n worker slots, the caller fills slot 0 and pool
/// threads fill the rest, and Barrier orders the phases inside a region.
/// Multiple regions may be in flight at once — concurrent PreparedQuery
/// executions each drain their own MorselQueues while the OS interleaves
/// their workers, so a query mix shares the machine at morsel granularity
/// instead of queueing whole queries behind each other.
///
/// Deadlock safety: regions contain barriers, so every slot of a submitted
/// region must eventually run on a distinct thread even while other
/// regions' workers are blocked in their own barriers. The pool maintains
/// the invariant threads >= active workers + unclaimed slots: submitting
/// work spawns any missing threads, which means the thread count grows to
/// the peak concurrent demand and then stays for reuse. Callers bound the
/// number of in-flight executions, not the pool.
class WorkerPool {
 public:
  /// Process-wide pool (threads are created lazily, reused across queries).
  static WorkerPool& Global();

  WorkerPool();
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(worker_id) on `thread_count` workers and blocks until all
  /// return. worker_id is dense in [0, thread_count); the caller acts as
  /// worker 0. With thread_count == 1 the job runs inline on the caller
  /// (clean single-threaded measurements: no handoff, no wakeup latency).
  /// Concurrent Run calls from different threads execute concurrently on
  /// the shared pool, each with correct results.
  void Run(size_t thread_count, const std::function<void(size_t)>& fn);

  /// Enqueues a detached one-shot task on the pool (the coordination body
  /// of PreparedQuery::ExecuteAsync). The task may itself call Run(); the
  /// thread-coverage invariant above still holds.
  void Submit(std::function<void()> task);

  /// Advisory hardware parallelism (not a pool limit).
  size_t max_threads() const { return max_threads_; }
  /// Threads spawned so far (grows to peak demand; introspection only).
  size_t spawned_threads() const;

 private:
  /// One parallel region (Run) or detached task (Submit). `fn` points into
  /// the Run caller's frame, which outlives the job because the caller
  /// blocks until `remaining` hits zero; Submit jobs own their body.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    std::function<void()> task;
    size_t slots = 0;      // pool-side slots to hand out
    size_t next_slot = 0;  // slots claimed so far
    size_t remaining = 0;  // claimed-or-not slots still unfinished
    bool detached = false;
  };

  void WorkerLoop();
  void EnsureThreadsLocked(size_t needed);
  void EnqueueLocked(std::shared_ptr<Job> job);

  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for queued slots
  std::condition_variable done_cv_;  // Run callers wait for their job
  std::deque<std::shared_ptr<Job>> queue_;  // jobs with unclaimed slots
  size_t active_ = 0;         // workers currently executing a slot
  size_t pending_slots_ = 0;  // unclaimed slots across queued jobs
  bool shutdown_ = false;
  size_t max_threads_;
};

/// The pool a run should execute on: the options' session pool when set,
/// the process-global pool otherwise.
inline WorkerPool& PoolFor(const QueryOptions& opt) {
  return opt.pool != nullptr ? *opt.pool : WorkerPool::Global();
}

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_WORKER_POOL_H_
