#ifndef VCQ_RUNTIME_RESOURCE_GOVERNOR_H_
#define VCQ_RUNTIME_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstddef>

#include "runtime/cancel.h"

// The resource-governance layer: memory budgets that fail a QUERY instead
// of the process.
//
// Two nested scopes share one mechanism. A QueryLedger is created per
// execution (vcq::PreparedQuery::Execute) and charged by every MemPool and
// join-build arena the run binds it to; crossing the per-query budget —
// QueryOptions::memory_budget — trips the run's CancelToken with
// kResourceExhausted. The ResourceGovernor is process-wide: every ledger
// charge also counts against its global budget, so N concurrent queries
// cannot collectively exceed the process bound even when each is within
// its own.
//
// Trips are SOFT: Charge() never throws and never blocks — it lets the
// allocation that crossed the line proceed (overshoot is bounded by one
// pool chunk) and relies on the sticky token to drain the query at its
// next morsel poll / barrier. This keeps the common failure path entirely
// exception-free: pools release on the normal unwind, barriers stay
// balanced, and the caller gets QueryResult::Failed(kResourceExhausted).
// Hard std::bad_alloc (real OOM, injected faults) is the separate,
// exception-based path handled by the scheduler's backstop.
//
// Spill mode (PR 8) turns the trip into PRESSURE: a spill-enabled run
// (QueryOptions::spill → QueryLedger::EnableSpillMode) treats a budget
// overage as a signal, not a verdict — Charge() leaves the token alone and
// UnderPressure() starts returning true, and spill-capable operators (the
// join builds' materialize phase, the worker-local group tables) poll it
// at chunk/batch boundaries and evict state to runtime::SpillManager temp
// files until usage drops back under the budget. The pressure signal is
// computed live from current usage, so relieving memory clears it without
// any reset call. bad_alloc remains the hard backstop in both modes.

namespace vcq::runtime {

/// Process-wide memory accountant. Budget 0 = unlimited (the default:
/// standalone benches run ungoverned, exactly the seed behavior).
class ResourceGovernor {
 public:
  static ResourceGovernor& Global() {
    static ResourceGovernor g;
    return g;
  }

  ResourceGovernor() = default;
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Sets the process-wide budget in bytes (0 = unlimited). Takes effect
  /// on the next charge; already-admitted overage drains cooperatively.
  void SetBudget(size_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  size_t budget() const { return budget_.load(std::memory_order_relaxed); }

  /// Accounts `bytes`; returns false when the charge pushed usage past the
  /// budget (the caller trips its token — the governor itself has no idea
  /// which query crossed the line last).
  bool Charge(size_t bytes) {
    const size_t now = in_use_.fetch_add(bytes, std::memory_order_relaxed) +
                       bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    const size_t budget = budget_.load(std::memory_order_relaxed);
    return budget == 0 || now <= budget;
  }

  void Uncharge(size_t bytes) {
    in_use_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// True while current usage exceeds a nonzero process budget — the
  /// process-wide half of the spill pressure signal.
  bool OverBudget() const {
    const size_t budget = budget_.load(std::memory_order_relaxed);
    return budget != 0 && in_use_.load(std::memory_order_relaxed) > budget;
  }

  /// Bytes currently charged across all live ledgers; the sweep test
  /// asserts this returns to its pre-query baseline after every failure.
  size_t in_use() const { return in_use_.load(std::memory_order_relaxed); }
  /// High-water mark since ResetPeak (bench/ablation_memory_pressure).
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void ResetPeak() {
    peak_.store(in_use_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  std::atomic<size_t> budget_{0};
  std::atomic<size_t> in_use_{0};
  std::atomic<size_t> peak_{0};
};

/// Per-execution memory ledger. Thread-safe: all of a run's workers charge
/// concurrently through the pools bound to it. Destroying the ledger
/// returns any residual charge to the governor, so process-wide accounting
/// is exact even if an unwind skipped an Uncharge.
class QueryLedger {
 public:
  /// `budget` bytes for this query (0 = unlimited); `token` is tripped
  /// with kResourceExhausted when either this budget or the governor's is
  /// crossed.
  QueryLedger(size_t budget, const CancelToken* token,
              ResourceGovernor* governor = &ResourceGovernor::Global())
      : budget_(budget), token_(token), governor_(governor) {}

  QueryLedger(const QueryLedger&) = delete;
  QueryLedger& operator=(const QueryLedger&) = delete;

  ~QueryLedger() {
    const size_t residue = in_use_.load(std::memory_order_relaxed);
    if (residue != 0) governor_->Uncharge(residue);
  }

  /// Soft charge: accounts the bytes, trips the token on overage, never
  /// throws (see file comment for why). In spill mode overage becomes
  /// pressure instead of a trip — see UnderPressure().
  void Charge(size_t bytes) {
    const size_t now =
        in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    bool over = budget_ != 0 && now > budget_;
    if (!governor_->Charge(bytes)) over = true;
    if (over && !spill_mode_ && token_ != nullptr) {
      // Observability before the sticky trip: only the FIRST overage of
      // the run records (subsequent charges find the token interrupted),
      // keeping the hot path one extra load in the already-failing case.
      if (!token_->Interrupted()) RecordTrip(now);
      token_->Fail(ExecStatus::kResourceExhausted);
    }
  }

  /// Switches budget overages from token trips to the UnderPressure()
  /// signal. Called once before the run's parallel phase (not thread-safe
  /// against concurrent charges; it doesn't need to be).
  void EnableSpillMode() { spill_mode_ = true; }
  bool spill_mode() const { return spill_mode_; }

  /// True while this ledger (or the process governor) is over a nonzero
  /// budget in spill mode. Computed live from current usage: spilling
  /// memory back under the budget clears the pressure with no reset.
  bool UnderPressure() const {
    if (!spill_mode_) return false;
    if (budget_ != 0 &&
        in_use_.load(std::memory_order_relaxed) > budget_)
      return true;
    return governor_->OverBudget();
  }

  void Uncharge(size_t bytes) {
    in_use_.fetch_sub(bytes, std::memory_order_relaxed);
    governor_->Uncharge(bytes);
  }

  size_t in_use() const { return in_use_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t budget() const { return budget_; }
  const CancelToken* token() const { return token_; }

  /// Attaches the execution's span sink so the run's first budget trip
  /// becomes a "governor.trip" instant event (runtime/trace.h). Set by
  /// vcq::PreparedQuery before the parallel phase; nullptr = untraced.
  void SetTrace(class QueryTrace* trace) { trace_ = trace; }

 private:
  /// Out-of-line (runtime/trace.cc) so this hot header needs no trace or
  /// metrics includes: records the trip event and bumps
  /// vcq.governor.trips_total.
  void RecordTrip(size_t in_use_bytes);

  const size_t budget_;
  const CancelToken* token_;
  ResourceGovernor* governor_;
  class QueryTrace* trace_ = nullptr;
  bool spill_mode_ = false;
  std::atomic<size_t> in_use_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_RESOURCE_GOVERNOR_H_
