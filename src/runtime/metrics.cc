#include "runtime/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "runtime/resource_governor.h"
#include "runtime/worker_pool.h"

namespace vcq::metrics {

namespace {

size_t BucketIndex(uint64_t v) {
  // 0 and 1 share bucket 0; otherwise bucket i covers [2^i, 2^(i+1)).
  if (v < 2) return 0;
  return static_cast<size_t>(std::bit_width(v)) - 1;
}

}  // namespace

uint64_t Histogram::BucketLo(size_t i) {
  return i == 0 ? 0 : (uint64_t{1} << i);
}

uint64_t Histogram::BucketHi(size_t i) {
  return i >= kBuckets - 1 ? UINT64_MAX : (uint64_t{1} << (i + 1));
}

void Histogram::Observe(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation (1-based), then walk the CDF.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * total + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      const uint64_t lo = BucketLo(i);
      const uint64_t hi = BucketHi(i);
      // Linear interpolation within the bucket.
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += in_bucket;
  }
  return BucketLo(kBuckets - 1);
}

Registry& Registry::Global() {
  // Leaked on purpose: metric updates may race static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::RegisterProbe(std::function<void()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.push_back(std::move(probe));
}

void Registry::RunProbes() {
  // Copy out so a probe may call GetGauge without self-deadlocking.
  std::vector<std::function<void()>> probes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    probes = probes_;
  }
  for (const std::function<void()>& probe : probes) probe();
}

std::string Registry::RenderJson() {
  RunProbes();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  char buf[160];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  name.c_str(), counter->value());
    out += buf;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64, first ? "" : ",",
                  name.c_str(), gauge->value());
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                  "}",
                  first ? "" : ",", name.c_str(), histogram->count(),
                  histogram->sum(), histogram->Percentile(0.50),
                  histogram->Percentile(0.95), histogram->Percentile(0.99));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string Registry::RenderPrometheus() {
  RunProbes();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[200];
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PromName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %" PRIu64 "\n",
                  prom.c_str(), prom.c_str(), counter->value());
    out += buf;
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PromName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %" PRId64 "\n",
                  prom.c_str(), prom.c_str(), gauge->value());
    out += buf;
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PromName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s summary\n", prom.c_str());
    out += buf;
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "0.5"},
          std::pair<double, const char*>{0.95, "0.95"},
          std::pair<double, const char*>{0.99, "0.99"}}) {
      std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %" PRIu64 "\n",
                    prom.c_str(), label, histogram->Percentile(q));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n", prom.c_str(),
                  histogram->sum(), prom.c_str(), histogram->count());
    out += buf;
  }
  return out;
}

void InstallDefaultProbes() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry::Global().RegisterProbe([] {
      Registry& reg = Registry::Global();
      runtime::Scheduler& sched = runtime::WorkerPool::Global().scheduler();
      reg.GetGauge("vcq.sched.queue_depth")
          .Set(static_cast<int64_t>(sched.queued_regions()));
      reg.GetGauge("vcq.sched.inflight")
          .Set(static_cast<int64_t>(sched.inflight()));
      reg.GetGauge("vcq.sched.admission_waiting")
          .Set(static_cast<int64_t>(sched.admission_waiting()));
      reg.GetGauge("vcq.sched.shed")
          .Set(static_cast<int64_t>(sched.shed_count()));
      runtime::ResourceGovernor& gov = runtime::ResourceGovernor::Global();
      reg.GetGauge("vcq.governor.in_use_bytes")
          .Set(static_cast<int64_t>(gov.in_use()));
      reg.GetGauge("vcq.governor.peak_bytes")
          .Set(static_cast<int64_t>(gov.peak()));
    });
  });
}

std::string RenderJson() {
  InstallDefaultProbes();
  return Registry::Global().RenderJson();
}

std::string RenderPrometheus() {
  InstallDefaultProbes();
  return Registry::Global().RenderPrometheus();
}

}  // namespace vcq::metrics
