#ifndef VCQ_RUNTIME_TRACE_H_
#define VCQ_RUNTIME_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/tuner.h"

// Per-execution trace spans — the unified observability substrate.
//
// One QueryTrace is the span buffer of one execution (or of one
// retry/degradation LADDER of executions: the wrappers share a single
// trace across attempts so backoff sleeps and rung descents are visible
// in context). The session owns the trace and stamps it into
// QueryResult::trace on success AND failure; standalone engine callers
// can hand their own sink in through QueryOptions::trace_sink.
//
// Recording model, chosen for near-zero disabled cost and TSan-clean
// enabled cost:
//   * LANE spans (AddLaneSpan): one lock-free single-writer vector per
//     worker lane. Within one execution, parallel regions run
//     sequentially and each worker id maps to exactly one lane, so a
//     lane has one writer at any instant — no atomics on the hot path.
//     Per-operator and per-pipeline spans go here.
//   * EVENT spans (AddEvent): a mutex-guarded vector for low-frequency
//     cross-thread spans — SQL compile stages, admission wait, gang
//     dispatch, spill I/O, governor trips, retry backoffs, rung
//     attempts. Rendered on a dedicated "session" lane (kSessionLane).
//   * SITE aggregates (RecordOperator): fixed-size atomic {ns, rows,
//     batches} per plan-node index, powering ExplainAnalyze without a
//     post-run span scan.
// All spans use one monotonic clock (NowNs — steady_clock, the same
// epoch JoinBuildTelemetry uses), so Chrome's timeline nests correctly.
//
// Recording-path unification (the NodeTelemetry contract): the trace
// EMBEDS the NodeTelemetry the tuner reads. When tracing is on, the
// session points QueryOptions::telemetry at node_telemetry(), so the
// join-build protocol (runtime/hashmap.h) records its per-site build
// span ONCE and both consumers — the tuner's reward signal and the
// ExplainAnalyze build/probe split — read the same numbers. When
// tracing is off the tuner keeps its private NodeTelemetry; nothing
// else is allocated or touched (QueryOptions::trace == kOff costs a
// null check at every instrumentation point).
//
// Export: ToChromeJson() renders the chrome://tracing (Perfetto) JSON
// object format; PreparedQuery::ExplainAnalyze() renders the compact
// annotated text tree (api/session.h, tectorwise::ExplainAnalyzeTree).

namespace vcq::runtime {

/// One measured interval. `cat` must point at static storage ("operator",
/// "pipeline", "sched", "spill", "sql", "session", ...). `tuples` carries
/// rows for operator/pipeline spans and BYTES for spill spans; `calls`
/// counts operator Next() batches (0 elsewhere). `site` is the plan-node
/// index (Tectorwise) or build/region ordinal (Typer), kNoSite when the
/// span is not node-scoped.
struct TraceSpan {
  const char* cat = "";
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t lane = 0;
  uint32_t site = UINT32_MAX;
  uint64_t tuples = 0;
  uint64_t calls = 0;

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

/// Span buffer of one execution (or one retry/degradation ladder).
/// Thread-safety contract: AddLaneSpan(lane) has one writer per lane at
/// any instant (worker id == lane within a gang region); AddEvent is
/// fully thread-safe; readers (Spans/ToChromeJson/...) run only after
/// the execution finished.
class QueryTrace {
 public:
  static constexpr size_t kMaxLanes = 64;
  /// Rendered lane for cross-thread event spans.
  static constexpr uint32_t kSessionLane = kMaxLanes;
  static constexpr uint32_t kNoSite = UINT32_MAX;
  static constexpr size_t kMaxSites = NodeTelemetry::kMaxSites;

  /// Monotonic nanoseconds — the one clock every span uses.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Lock-free per-worker recording (single writer per lane). Lanes past
  /// kMaxLanes fall back to AddEvent.
  void AddLaneSpan(uint32_t lane, TraceSpan span);

  /// Thread-safe low-frequency recording (mutex). The span is rendered
  /// on kSessionLane unless it carries an explicit lane.
  void AddEvent(TraceSpan span);

  /// Zero-length marker event at NowNs() (e.g. a governor trip).
  void AddInstant(const char* cat, std::string name,
                  uint32_t site = kNoSite);

  /// Ordinal of the next parallel region ("pipeline#<k>").
  uint32_t BeginRegion() {
    return regions_.fetch_add(1, std::memory_order_relaxed);
  }
  uint32_t regions() const {
    return regions_.load(std::memory_order_relaxed);
  }

  /// Per-plan-node aggregate across workers: inclusive busy ns (sum of
  /// Next() durations), output rows, non-empty batches.
  void RecordOperator(uint32_t site, uint64_t ns, uint64_t rows,
                      uint64_t batches);
  struct OperatorStats {
    uint64_t ns = 0;
    uint64_t rows = 0;
    uint64_t batches = 0;
  };
  OperatorStats OperatorAt(uint32_t site) const;
  bool HasOperator(uint32_t site) const;

  /// The embedded per-site telemetry the join-build protocol and the
  /// tuner share (build ns/tuples per site — see runtime/hashmap.h).
  NodeTelemetry& node_telemetry() { return telemetry_; }
  const NodeTelemetry& node_telemetry() const { return telemetry_; }

  /// Every span (lanes + events), sorted by start time.
  std::vector<TraceSpan> Spans() const;
  size_t span_count() const;

  /// Total spill bytes attributed to plan-node `site` (sum of
  /// "spill.write" event spans recorded with that site).
  uint64_t SpillBytesAt(uint32_t site) const;

  /// Copies every span of `other` into this trace's event buffer — used
  /// to prepend the prepare-time SQL stage spans to an execution trace.
  void Append(const QueryTrace& other);

  /// chrome://tracing (Perfetto) JSON: {"traceEvents":[{"ph":"X",...}]}.
  /// Timestamps are microseconds on the steady-clock epoch; each lane
  /// renders as one tid.
  std::string ToChromeJson() const;

 private:
  struct SiteAgg {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> batches{0};
  };

  std::array<std::vector<TraceSpan>, kMaxLanes> lanes_;
  std::array<SiteAgg, kMaxSites> ops_{};
  NodeTelemetry telemetry_;
  std::atomic<uint32_t> regions_{0};

  mutable std::mutex mu_;
  std::vector<TraceSpan> events_;  // guarded by mu_
};

/// RAII event span; a nullptr trace makes every member a no-op, so call
/// sites stay branch-light when tracing is off.
class TraceScope {
 public:
  TraceScope(QueryTrace* trace, const char* cat, std::string name,
             uint32_t site = QueryTrace::kNoSite)
      : trace_(trace) {
    if (trace_ == nullptr) return;
    span_.cat = cat;
    span_.name = std::move(name);
    span_.site = site;
    span_.start_ns = QueryTrace::NowNs();
  }
  ~TraceScope() {
    if (trace_ == nullptr) return;
    span_.end_ns = QueryTrace::NowNs();
    trace_->AddEvent(std::move(span_));
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void SetTuples(uint64_t tuples) { span_.tuples = tuples; }

 private:
  QueryTrace* trace_;
  TraceSpan span_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_TRACE_H_
