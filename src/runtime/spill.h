#ifndef VCQ_RUNTIME_SPILL_H_
#define VCQ_RUNTIME_SPILL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/cancel.h"
#include "runtime/fault_injector.h"

// Temp-file-backed partition spill — the "degrade, don't die" layer under
// the memory governor. When a run enables spill (QueryOptions::spill), a
// memory-budget overage becomes spill PRESSURE instead of a
// kResourceExhausted trip (QueryLedger::UnderPressure): operators that can
// evict state — the join builds' materialize-phase chunks, the worker-local
// group tables — write it to segmented temp files Grace-style and release
// the memory, then the build insert / group merge streams the spilled
// segments back partition-at-a-time. Results are byte-identical to
// in-memory runs; only the peak resident footprint changes.
//
// Accounting and containment. Spilled bytes are counted per execution
// (SpillManager::spilled_bytes) against an optional byte limit
// (QueryOptions::spill_limit, env VCQ_SPILL_LIMIT): a run that would spill
// past the limit throws std::bad_alloc, which the scheduler backstop turns
// into the familiar sticky kResourceExhausted drain — disk is a budget
// too. Every I/O site is a named fault-injection point (spill.open /
// spill.write / spill.read / spill.unlink), so the sweep test can kill a
// spill at any byte and assert the zero-leak drain. Cleanup is
// fault-TOLERANT: an injected failure at spill.unlink is absorbed (a
// completed query must not fail because removing its scratch file hiccuped)
// and the file is still removed.
//
// File layout: one SpillManager per execution owns a unique directory
// (VCQ_SPILL_DIR or the system temp dir; "vcq-spill-<pid>-<seq>/") and
// hands out SpillFiles — one per (operator, worker), single writer each.
// Appends are segmented: a segment records (partition, offset, bytes,
// rows) so a reader can stream one partition's rows back in write order.
// The manager's destructor unlinks every file and removes the directory on
// every exit path, success or unwind.

namespace vcq::runtime {

/// One spill file: segmented appends by a single writer, positional reads
/// by any thread after the writer's phase barrier.
class SpillFile {
 public:
  struct Segment {
    uint32_t partition;  ///< Writer-chosen label (hash partition / 0).
    uint64_t offset;     ///< Byte offset in the file.
    uint64_t bytes;      ///< Segment payload size.
    uint64_t rows;       ///< Row count (bytes / row stride).
  };

  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one segment. Fault point "spill.write" fires before the
  /// write; a short write or I/O error throws (std::bad_alloc for the
  /// injected fault, std::runtime_error for a real disk failure), with the
  /// segment index and byte accounting untouched.
  void Append(uint32_t partition, const void* data, size_t bytes,
              size_t rows);

  /// Reads segment payload into `out` (must hold seg.bytes). Fault point
  /// "spill.read" fires before the read.
  void Read(const Segment& seg, void* out) const;

  /// Segments in write order (creation order of the spilled rows — the
  /// byte-identity contract of the group merge depends on it).
  const std::vector<Segment>& segments() const { return segments_; }
  /// Total payload bytes appended to this file.
  size_t bytes_written() const { return write_offset_; }
  /// Total rows across all segments labeled `partition`.
  size_t rows_in_partition(uint32_t partition) const;

 private:
  friend class SpillManager;
  SpillFile(class SpillManager* mgr, int fd, std::string path, uint32_t site)
      : mgr_(mgr), fd_(fd), path_(std::move(path)), site_(site) {}

  class SpillManager* mgr_;
  int fd_;
  std::string path_;
  uint32_t site_;  ///< Plan-node index for trace attribution.
  uint64_t write_offset_ = 0;
  std::vector<Segment> segments_;
};

/// Per-execution spill state: owns the run's spill directory and files,
/// accounts spilled bytes against the spill byte limit, and cleans
/// everything up on destruction (every exit path).
class SpillManager {
 public:
  /// `limit` bounds total spilled bytes for the execution (0 = take
  /// VCQ_SPILL_LIMIT from the environment, else unlimited). `fault` and
  /// `token` thread the run's failure-containment context through the I/O
  /// fault points; either may be nullptr.
  SpillManager(size_t limit, FaultInjector* fault, const CancelToken* token);
  ~SpillManager();
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Opens a new spill file (fault point "spill.open"); the returned file
  /// is owned by the manager and lives until the manager is destroyed.
  /// `label` names the spilling site in the file name (diagnostics only);
  /// `site` is the plan-node index the file's I/O is attributed to in
  /// trace spans (UINT32_MAX = not node-scoped, e.g. Typer's fused
  /// pipelines). Thread-safe: concurrent workers create their files
  /// independently.
  SpillFile* Create(const char* label, uint32_t site = UINT32_MAX);

  /// Attaches the execution's span sink (runtime/trace.h): every
  /// spill.open/write/read becomes a trace span carrying the byte count
  /// and the owning node's site. Set by vcq::PreparedQuery before the
  /// run; nullptr (the default) records nothing.
  void SetTrace(class QueryTrace* trace) { trace_ = trace; }

  /// Total bytes spilled by this execution so far.
  size_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  /// Spill files created by this execution.
  size_t file_count() const;
  /// The execution's spill directory ("" until the first Create).
  std::string dir() const;

  /// Resolved base directory for spill files: VCQ_SPILL_DIR, else TMPDIR,
  /// else /tmp. Re-read per call so tests can redirect it.
  static std::string BaseDir();

 private:
  friend class SpillFile;
  /// Books `bytes` of spill; throws std::bad_alloc past the limit (the
  /// backstop converts it to kResourceExhausted — disk is a budget too).
  void ChargeSpill(size_t bytes);

  const size_t limit_;
  FaultInjector* fault_;
  const CancelToken* token_;
  class QueryTrace* trace_ = nullptr;
  std::atomic<size_t> spilled_bytes_{0};

  mutable std::mutex mu_;
  std::string dir_;  // created lazily on first Create (guarded by mu_)
  std::vector<std::unique_ptr<SpillFile>> files_;  // guarded by mu_
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_SPILL_H_
