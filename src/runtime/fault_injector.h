#ifndef VCQ_RUNTIME_FAULT_INJECTOR_H_
#define VCQ_RUNTIME_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/cancel.h"

// Deterministic fault injection for the failure-containment layer. Both
// engines call VCQ_FAULT_POINT-style hooks (runtime::FaultHit) at every
// allocation and barrier site; a FaultInjector armed on one of those named
// points fires on a chosen hit ordinal and injects an allocation failure
// (std::bad_alloc), a cooperative cancellation, or a delay. Hits are
// counted even when nothing is armed, so a test can dry-run a query to
// learn how often each point is crossed, then replay with the fault armed
// at the first / last / an arbitrary in-between hit — the substrate the
// fault-injection sweep (tests/fault_injection_test.cc) uses to prove that
// a failure at *every* site drains cleanly, not just the sites we thought
// of. Determinism comes from the seed-driven Rng (choosing hit ordinals)
// plus ordinal-based firing: the same seed and site produce the same
// injected failure across runs.

namespace vcq::runtime {

enum class FaultAction : uint8_t {
  kThrowBadAlloc,  ///< Throw std::bad_alloc from the site (the scheduler
                   ///< backstop converts it to kResourceExhausted).
  kCancel,         ///< Trip the run's CancelToken (as if the user cancelled
                   ///< at exactly this site).
  kDelay,          ///< Sleep delay_us at the site (latency fault; the query
                   ///< must still produce byte-identical results).
};

struct FaultSpec {
  FaultAction action = FaultAction::kThrowBadAlloc;
  /// 1-based hit ordinal the fault fires on. With parallel workers the
  /// ordinal is over the global (cross-worker) hit count of the point.
  uint64_t fire_on_hit = 1;
  /// Fire on every hit >= fire_on_hit instead of exactly once.
  bool repeat = false;
  /// kDelay only.
  uint32_t delay_us = 200;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(uint64_t seed) : rng_state_(seed ? seed : 1) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `spec` on the named point (replacing any previous spec there).
  void Arm(std::string_view point, FaultSpec spec);
  void DisarmAll();
  /// Resets hit and fired counters (armed specs stay armed).
  void ResetCounters();

  /// Times the named point was crossed since the last ResetCounters.
  uint64_t HitCount(std::string_view point) const;
  /// Times any armed fault actually fired (a fire_on_hit beyond the run's
  /// hit count never fires; sweep assertions are conditional on this).
  uint64_t FiredCount() const;

  /// Site hook: counts the hit and fires the armed fault when the ordinal
  /// matches. May throw std::bad_alloc (kThrowBadAlloc) — every site must
  /// be unwind-safe, which is precisely what the sweep test verifies.
  void Hit(const char* point, const CancelToken* token);

  /// Deterministic stream for choosing hit ordinals etc. (SplitMix64).
  uint64_t NextRand();
  /// Uniform in [1, bound] (bound >= 1); the natural spelling for picking
  /// a 1-based hit ordinal.
  uint64_t RandOrdinal(uint64_t bound);

  /// Every point name the engines currently invoke Hit() with — the sweep
  /// test iterates this registry, and a dry-run asserting each point was
  /// actually crossed keeps the list honest when sites move.
  static const std::vector<const char*>& KnownPoints();

  /// Process-wide injector configured from the environment, or nullptr
  /// when unset. VCQ_FAULT="point[:hit[:action]]" arms one point (action:
  /// "badalloc" | "cancel" | "delay", default badalloc; hit default 1);
  /// VCQ_FAULT_SEED seeds the Rng. Parsed once, first use.
  static FaultInjector* ProcessWide();

 private:
  struct PointState {
    uint64_t hits = 0;
    bool armed = false;
    FaultSpec spec;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
  uint64_t fired_ = 0;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

/// Null-tolerant site spelling, mirroring runtime::Interrupted: engines
/// carry a FaultInjector* that is nullptr on every non-test run, so the
/// hook is one branch on the hot path.
inline void FaultHit(FaultInjector* fi, const char* point,
                     const CancelToken* token) {
  if (fi != nullptr) fi->Hit(point, token);
}

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_FAULT_INJECTOR_H_
