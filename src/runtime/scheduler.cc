#include "runtime/scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "runtime/metrics.h"

namespace vcq::runtime {

namespace {

// Process-wide admission outcome counters (runtime/metrics.h) — summed
// across every Scheduler instance, unlike the per-scheduler shed_count()
// introspection the brown-out tests read.
void CountReject() {
  static metrics::Counter& rejects = metrics::Registry::Global().GetCounter(
      "vcq.sched.admission_rejects_total");
  rejects.Add();
}

void CountShed() {
  static metrics::Counter& sheds =
      metrics::Registry::Global().GetCounter("vcq.sched.shed_total");
  sheds.Add();
}

size_t DefaultCapacity() {
  // The floor covers the studied workload's widest region (tests and
  // benches go up to 16-wide) on small CI hosts; real deployments size
  // the scheduler explicitly.
  return std::max<size_t>(std::thread::hardware_concurrency(), 16);
}

}  // namespace

Scheduler::Scheduler(size_t thread_count)
    : capacity_(thread_count == 0 ? DefaultCapacity() : thread_count) {
  streams_.emplace(0, Stream{});  // the shared default stream, weight 1
}

Scheduler::~Scheduler() {
  {
    std::scoped_lock lock(mutex_, coord_mutex_, adm_mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  coord_cv_.notify_all();
  adm_cv_.notify_all();
  for (auto& t : workers_) t.join();
  for (auto& t : coordinators_) t.join();
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

uint64_t Scheduler::CreateStream(double weight) {
  VCQ_CHECK_MSG(weight > 0.0, "stream weight must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_stream_++;
  Stream stream;
  stream.weight = weight;
  // A new stream starts at the current virtual time, not 0 — otherwise a
  // freshly created (or long-idle) stream would monopolize dispatch until
  // its pass caught up with everyone else's.
  stream.pass = virtual_time_;
  streams_.emplace(id, std::move(stream));
  return id;
}

void Scheduler::SetStreamWeight(uint64_t stream, double weight) {
  VCQ_CHECK_MSG(weight > 0.0, "stream weight must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  if (it != streams_.end()) it->second.weight = weight;
}

void Scheduler::DestroyStream(uint64_t stream) {
  if (stream == 0) return;  // the default stream is permanent
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  // Pending regions have blocked Run callers; move them to the default
  // stream rather than stranding them. Insert by arrival seq (both queues
  // are seq-monotone) so kFifo's global-arrival-order contract survives
  // the move.
  Stream& fallback = StreamForLocked(0);
  for (auto& region : it->second.queue) {
    auto pos = fallback.queue.begin();
    while (pos != fallback.queue.end() && (*pos)->seq < region->seq) ++pos;
    fallback.queue.insert(pos, std::move(region));
  }
  streams_.erase(it);
}

double Scheduler::StreamWeight(uint64_t stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  return it != streams_.end() ? it->second.weight : 1.0;
}

Scheduler::Stream& Scheduler::StreamForLocked(uint64_t id) {
  const auto it = streams_.find(id);
  if (it != streams_.end()) return it->second;
  return streams_.find(0)->second;  // stale/unknown ids share the default
}

// ---------------------------------------------------------------------------
// Gang dispatch
// ---------------------------------------------------------------------------

void Scheduler::TryDispatchLocked() {
  // No dispatch (and in particular no worker spawn) once teardown began:
  // the destructor joins workers_ after setting shutdown_, so the vector
  // must be stable from that point on. Already-dispatched regions still
  // drain; destroying a scheduler while Run callers are queued is caller
  // misuse (their regions would never start).
  if (shutdown_) return;
  while (true) {
    // Pick the next region strictly by policy order. No backfill: if the
    // chosen region does not fit the free capacity, nothing behind it is
    // dispatched either — backfilling would let narrow regions starve a
    // wide one indefinitely.
    Stream* best = nullptr;
    uint64_t best_id = 0;
    for (auto& [id, stream] : streams_) {
      if (stream.queue.empty()) continue;
      if (best == nullptr) {
        best = &stream;
        best_id = id;
        continue;
      }
      const Region& cand = *stream.queue.front();
      const Region& lead = *best->queue.front();
      bool better;
      if (policy_ == SchedPolicy::kFifo) {
        better = cand.seq < lead.seq;
      } else if (stream.pass != best->pass) {
        better = stream.pass < best->pass;
      } else if (cand.work != lead.work) {
        better = cand.work < lead.work;  // shortest-remaining-region
      } else {
        better = id < best_id;
      }
      if (better) {
        best = &stream;
        best_id = id;
      }
    }
    if (best == nullptr) return;
    std::shared_ptr<Region>& head = best->queue.front();
    if (head->slots > capacity_ - busy_ - reserved_) return;

    std::shared_ptr<Region> region = std::move(head);
    best->queue.pop_front();
    --queued_;
    ++best->dispatched;
    if (policy_ == SchedPolicy::kWeightedFair) {
      virtual_time_ = std::max(virtual_time_, best->pass);
      best->pass += 1.0 / best->weight;
    }
    region->dispatched = true;
    reserved_ += region->slots;
    while (workers_.size() < busy_ + reserved_)
      workers_.emplace_back(&Scheduler::WorkerLoop, this);
    if (region->slots > 0) ready_.push_back(std::move(region));
    dispatch_cv_.notify_all();
    work_cv_.notify_all();
  }
}

void Scheduler::RunSlot(Region* region, size_t worker_id) {
  // The exception backstop: nothing a region slot throws may escape onto a
  // pool worker thread (std::terminate) or past a barrier its siblings
  // are waiting at. A managed region (cancel != nullptr) converts the
  // exception to a sticky token trip — bad_alloc to kResourceExhausted,
  // anything else to kInternalError — and the surviving slots abort their
  // barrier waits (Barrier::WaitOrAbort) and drain; the query fails, the
  // process lives. An unmanaged region stashes the first exception and
  // Run() rethrows it on the caller after the region drains.
  try {
    (*region->fn)(worker_id);
  } catch (...) {
    if (region->cancel != nullptr) {
      FailCurrentException(region->cancel);
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!region->error) region->error = std::current_exception();
    }
  }
}

void Scheduler::Run(size_t thread_count, const std::function<void(size_t)>& fn,
                    const RegionInfo& info) {
  VCQ_CHECK(thread_count >= 1);
  if (thread_count == 1) {
    // Inline fast path: single-threaded runs never touch the scheduler
    // (clean measurements — no handoff, no wakeup latency, no queueing).
    // The backstop still applies for managed runs: a throw mid-pipeline
    // must surface as a failed-status result, not an escaped exception.
    if (info.cancel == nullptr) {
      fn(0);
      return;
    }
    try {
      fn(0);
    } catch (...) {
      FailCurrentException(info.cancel);
    }
    return;
  }
  VCQ_CHECK_MSG(
      thread_count - 1 <= capacity_,
      "parallel region wider than the scheduler's gang capacity; size "
      "QueryOptions::threads <= the pool's scheduler_threads (vcq::Session "
      "clamps this at Prepare time)");
  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->slots = thread_count - 1;  // the caller acts as worker 0
  region->remaining = region->slots;
  region->work = info.work;
  region->cancel = info.cancel;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Stream& stream = StreamForLocked(info.stream);
    // A stream going from idle to backlogged re-anchors at the virtual
    // time so its stale-low pass cannot monopolize dispatch.
    if (stream.queue.empty()) stream.pass = std::max(stream.pass, virtual_time_);
    region->seq = next_seq_++;
    stream.queue.push_back(region);
    ++queued_;
    TryDispatchLocked();
    // Gang admission: worker 0 (the caller) starts together with the
    // reserved slots, not before — the region runs as a unit.
    dispatch_cv_.wait(lock, [&] { return region->dispatched; });
  }

  // Worker 0 runs under the same backstop as the pool slots — and must
  // NOT unwind before the region drains: `fn` lives on this stack frame,
  // and a still-running slot would call through a destroyed function.
  RunSlot(region.get(), 0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return region->remaining == 0; });
  if (region->error) {
    // Unmanaged region, some slot threw: fail fast on the caller, after
    // the drain above made the stack-held `fn` safe to destroy.
    std::exception_ptr error = region->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
    // Drain before exiting: a dispatched region has a blocked Run caller
    // that must be released even during teardown.
    if (shutdown_ && ready_.empty()) return;
    std::shared_ptr<Region> region = ready_.front();
    const size_t slot = region->next_slot++;
    if (region->next_slot == region->slots) ready_.pop_front();
    --reserved_;
    ++busy_;
    lock.unlock();

    RunSlot(region.get(), slot + 1);  // the Run caller is worker 0

    lock.lock();
    --busy_;
    if (--region->remaining == 0) done_cv_.notify_all();
    TryDispatchLocked();  // this worker is free again: admit the next gang
  }
}

// ---------------------------------------------------------------------------
// Coordinators
// ---------------------------------------------------------------------------

void Scheduler::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(coord_mutex_);
    VCQ_CHECK_MSG(!shutdown_, "Submit on a shut-down scheduler");
    coord_queue_.push_back(std::move(task));
    // Keep one coordinator per pending task: an idle coordinator that has
    // not woken up yet must not absorb two queued tasks (it would run
    // them serially, collapsing supposedly concurrent ExecuteAsyncs).
    if (coord_queue_.size() > coord_idle_)
      coordinators_.emplace_back(&Scheduler::CoordinatorLoop, this);
  }
  coord_cv_.notify_one();
}

void Scheduler::CoordinatorLoop() {
  std::unique_lock<std::mutex> lock(coord_mutex_);
  while (true) {
    ++coord_idle_;
    coord_cv_.wait(lock, [&] { return shutdown_ || !coord_queue_.empty(); });
    --coord_idle_;
    if (coord_queue_.empty()) return;  // shutdown with nothing left
    std::function<void()> task = std::move(coord_queue_.front());
    coord_queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

void Scheduler::SetAdmissionLimit(size_t max_inflight, size_t max_queue) {
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    max_inflight_ = max_inflight;
    max_adm_queue_ = max_queue;
  }
  adm_cv_.notify_all();
}

void Scheduler::SetMemoryBudget(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    mem_budget_ = bytes;
  }
  adm_cv_.notify_all();
}

void Scheduler::SetStreamQuota(uint64_t stream, size_t max_inflight,
                               size_t max_bytes) {
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    AdmStream& s = adm_streams_[stream];
    s.max_inflight = max_inflight;
    s.max_bytes = max_bytes;
    // Clearing the quota may leave a dead entry; drop it so the map only
    // holds streams with a quota or something in flight.
    if (s.max_inflight == 0 && s.max_bytes == 0 && s.inflight == 0 &&
        s.bytes == 0) {
      adm_streams_.erase(stream);
    }
  }
  adm_cv_.notify_all();  // raising a quota can unblock waiters
}

void Scheduler::SetBrownout(double threshold) {
  VCQ_CHECK_MSG(threshold >= 0.0, "brown-out threshold must be >= 0");
  std::lock_guard<std::mutex> lock(adm_mutex_);
  brownout_threshold_ = threshold;
}

Scheduler::Admission Scheduler::Admit(const CancelToken* cancel,
                                      size_t estimated_bytes,
                                      uint64_t stream) {
  std::unique_lock<std::mutex> lock(adm_mutex_);
  if (cancel != nullptr && cancel->Interrupted())
    return Admission(cancel->status());
  // Memory-aware admission: an execution whose estimate can NEVER fit the
  // byte budget is rejected up front — waiting would deadlock it behind
  // releases that can't help. kResourceExhausted (not kRejected) so
  // callers can tell "shrink the query or raise the budget" from
  // transient queue pressure.
  if (mem_budget_ != 0 && estimated_bytes > mem_budget_) {
    CountReject();
    return Admission(ExecStatus::kResourceExhausted);
  }
  // Same never-fits reasoning against the stream's own byte quota.
  if (const auto it = adm_streams_.find(stream); it != adm_streams_.end()) {
    if (it->second.max_bytes != 0 &&
        estimated_bytes > it->second.max_bytes) {
      CountReject();
      return Admission(ExecStatus::kResourceExhausted);
    }
  }
  // Brown-out: with the admission queue past the pressure threshold, shed
  // new arrivals of the heaviest tenant (most in-flight bytes, ties by
  // count; must actually have something admitted) instead of queueing
  // them. Checked before the queue-capacity check so the heaviest tenant
  // cannot consume the queue's last slots under pressure.
  if (brownout_threshold_ > 0.0 && max_adm_queue_ != 0 &&
      static_cast<double>(adm_waiting_) >=
          brownout_threshold_ * static_cast<double>(max_adm_queue_)) {
    const AdmStream* heaviest = nullptr;
    uint64_t heaviest_id = 0;
    for (const auto& [id, s] : adm_streams_) {
      if (s.inflight == 0) continue;
      if (heaviest == nullptr || s.bytes > heaviest->bytes ||
          (s.bytes == heaviest->bytes && s.inflight > heaviest->inflight)) {
        heaviest = &s;
        heaviest_id = id;
      }
    }
    if (heaviest != nullptr && heaviest_id == stream) {
      ++shed_count_;
      CountShed();
      CountReject();
      return Admission(ExecStatus::kRejected);
    }
  }
  const auto has_capacity = [&] {
    if (max_inflight_ != 0 && inflight_ >= max_inflight_) return false;
    if (const auto it = adm_streams_.find(stream);
        it != adm_streams_.end()) {
      const AdmStream& s = it->second;
      if (s.max_inflight != 0 && s.inflight >= s.max_inflight) return false;
      if (s.max_bytes != 0 && s.bytes + estimated_bytes > s.max_bytes)
        return false;
    }
    return mem_budget_ == 0 ||
           mem_inflight_ + estimated_bytes <= mem_budget_;
  };
  const auto admit = [&] {
    ++inflight_;
    mem_inflight_ += estimated_bytes;
    AdmStream& s = adm_streams_[stream];
    ++s.inflight;
    s.bytes += estimated_bytes;
    return Admission(this, estimated_bytes, stream);
  };
  if (has_capacity() && adm_waiting_ == 0) return admit();  // no queue-jumping
  if (adm_waiting_ >= max_adm_queue_) {
    CountReject();
    return Admission(ExecStatus::kRejected);
  }
  ++adm_waiting_;
  while (!has_capacity() || shutdown_) {
    if (shutdown_) {
      --adm_waiting_;
      CountReject();
      return Admission(ExecStatus::kRejected);
    }
    if (cancel != nullptr && cancel->Interrupted()) {
      --adm_waiting_;
      adm_cv_.notify_one();  // hand the wake-up on
      return Admission(cancel->status());
    }
    if (cancel == nullptr) {
      // Nothing to poll: sleep until a release/limit-change/shutdown
      // notification.
      adm_cv_.wait(lock, [&] { return has_capacity() || shutdown_; });
    } else {
      // The wait polls the token: Cancel() has no hook into this cv, and
      // a deadline must also fire while queued. 2ms granularity is far
      // below any query's runtime.
      adm_cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
  }
  --adm_waiting_;
  return admit();
}

void Scheduler::ReleaseAdmission(size_t bytes, uint64_t stream) {
  {
    std::lock_guard<std::mutex> lock(adm_mutex_);
    VCQ_CHECK(inflight_ > 0);
    --inflight_;
    VCQ_CHECK(mem_inflight_ >= bytes);
    mem_inflight_ -= bytes;
    const auto it = adm_streams_.find(stream);
    VCQ_CHECK(it != adm_streams_.end() && it->second.inflight > 0 &&
              it->second.bytes >= bytes);
    AdmStream& s = it->second;
    --s.inflight;
    s.bytes -= bytes;
    // Keep only streams with a configured quota or live admissions.
    if (s.max_inflight == 0 && s.max_bytes == 0 && s.inflight == 0 &&
        s.bytes == 0) {
      adm_streams_.erase(it);
    }
  }
  // A byte release can unblock several queued waiters at once (and the
  // count release exactly one); waking all is cheap at admission rates.
  adm_cv_.notify_all();
}

void Scheduler::Admission::Release() {
  if (sched_ != nullptr) {
    sched_->ReleaseAdmission(bytes_, stream_);
    sched_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t Scheduler::worker_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

size_t Scheduler::coordinator_threads() const {
  std::lock_guard<std::mutex> lock(coord_mutex_);
  return coordinators_.size();
}

size_t Scheduler::queued_regions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

uint64_t Scheduler::regions_dispatched(uint64_t stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  return it != streams_.end() ? it->second.dispatched : 0;
}

size_t Scheduler::inflight() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return inflight_;
}

size_t Scheduler::admission_waiting() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return adm_waiting_;
}

size_t Scheduler::stream_inflight(uint64_t stream) const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  const auto it = adm_streams_.find(stream);
  return it != adm_streams_.end() ? it->second.inflight : 0;
}

size_t Scheduler::stream_inflight_bytes(uint64_t stream) const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  const auto it = adm_streams_.find(stream);
  return it != adm_streams_.end() ? it->second.bytes : 0;
}

uint64_t Scheduler::shed_count() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return shed_count_;
}

size_t Scheduler::memory_budget() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return mem_budget_;
}

size_t Scheduler::memory_inflight() const {
  std::lock_guard<std::mutex> lock(adm_mutex_);
  return mem_inflight_;
}

void Scheduler::SetPolicy(SchedPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
}

}  // namespace vcq::runtime
