#ifndef VCQ_RUNTIME_MEM_POOL_H_
#define VCQ_RUNTIME_MEM_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"

namespace vcq::runtime {

/// Arena allocator for hash-table entries. Each worker thread owns a pool,
/// so entry allocation during parallel builds is contention-free; the pools
/// are kept alive by the operator that owns the hash table. Memory is
/// reclaimed wholesale — when the pool dies, or early via Release() once
/// the rows have been relocated elsewhere (the partitioned join build
/// copies every entry into its contiguous arena, after which the
/// materialize-phase chunks here are dead weight).
class MemPool {
 public:
  explicit MemPool(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;
  MemPool(MemPool&& other) noexcept { *this = std::move(other); }
  MemPool& operator=(MemPool&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_bytes_ = other.chunk_bytes_;
      chunks_ = std::move(other.chunks_);
      current_ = other.current_;
      current_size_ = other.current_size_;
      used_ = other.used_;
      total_allocated_ = other.total_allocated_;
      owned_bytes_ = other.owned_bytes_;
      other.chunks_.clear();
      other.current_ = nullptr;
      other.current_size_ = 0;
      other.used_ = 0;
      other.total_allocated_ = 0;
      other.owned_bytes_ = 0;
    }
    return *this;
  }

  ~MemPool() { Release(); }

  /// Returns 8-byte-aligned storage; never fails (aborts on OOM).
  void* Allocate(size_t bytes) {
    bytes = AlignUp(bytes, 8);
    if (used_ + bytes > current_size_) Grow(bytes);
    void* p = current_ + used_;
    used_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pool never runs destructors");
    return new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  /// Frees every chunk now (all handed-out pointers become dangling); the
  /// pool stays usable for new allocations. Called by the join builds once
  /// a partitioned insert has relocated all entries into its arena.
  void Release() {
    live_bytes_.fetch_sub(owned_bytes_, std::memory_order_relaxed);
    owned_bytes_ = 0;
    chunks_.clear();
    current_ = nullptr;
    current_size_ = 0;
    used_ = 0;
  }

  /// Total bytes handed out over the pool's lifetime (diagnostics).
  size_t bytes_allocated() const { return total_allocated_; }

  /// Process-wide bytes currently held by all live MemPool chunks — the
  /// transient-build-memory counter hashmap_test asserts on: after a
  /// partitioned build releases its materialize chunks this drops back,
  /// while a CAS build (whose chains live in the chunks) keeps them.
  static size_t live_bytes() {
    return live_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void Grow(size_t min_bytes) {
    const size_t size = std::max(chunk_bytes_, NextPow2(min_bytes));
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    current_ = chunks_.back().get();
    current_size_ = size;
    used_ = 0;
    total_allocated_ += size;
    owned_bytes_ += size;
    live_bytes_.fetch_add(size, std::memory_order_relaxed);
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* current_ = nullptr;
  size_t current_size_ = 0;
  size_t used_ = 0;
  size_t total_allocated_ = 0;
  size_t owned_bytes_ = 0;

  inline static std::atomic<size_t> live_bytes_{0};
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_MEM_POOL_H_
