#ifndef VCQ_RUNTIME_MEM_POOL_H_
#define VCQ_RUNTIME_MEM_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"
#include "runtime/fault_injector.h"
#include "runtime/resource_governor.h"

namespace vcq::runtime {

/// Arena allocator for hash-table entries. Each worker thread owns a pool,
/// so entry allocation during parallel builds is contention-free; the pools
/// are kept alive by the operator that owns the hash table. Memory is
/// reclaimed wholesale — when the pool dies, or early via Release() once
/// the rows have been relocated elsewhere (the partitioned join build
/// copies every entry into its contiguous arena, after which the
/// materialize-phase chunks here are dead weight).
///
/// Resource governance: Bind() attaches the run's QueryLedger and
/// FaultInjector. Every chunk the pool grows by is charged to the ledger
/// (and through it to the process ResourceGovernor) and uncharged on
/// Release/destruction, so `in_use()` tracks exactly the bytes
/// live_bytes() counts for this run. Growth order is fault point, then
/// allocation, then accounting — a throw from either of the first two
/// leaves the pool and all counters exactly as they were (strong
/// guarantee), which is what keeps live_bytes()/ledger balanced across
/// any injected or real allocation failure.
class MemPool {
 public:
  explicit MemPool(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;
  MemPool(MemPool&& other) noexcept { *this = std::move(other); }
  MemPool& operator=(MemPool&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_bytes_ = other.chunk_bytes_;
      chunks_ = std::move(other.chunks_);
      current_ = other.current_;
      current_size_ = other.current_size_;
      used_ = other.used_;
      total_allocated_ = other.total_allocated_;
      owned_bytes_ = other.owned_bytes_;
      ledger_charged_ = other.ledger_charged_;
      ledger_ = other.ledger_;
      fault_ = other.fault_;
      fault_site_ = other.fault_site_;
      other.chunks_.clear();
      other.current_ = nullptr;
      other.current_size_ = 0;
      other.used_ = 0;
      other.total_allocated_ = 0;
      other.owned_bytes_ = 0;
      other.ledger_charged_ = 0;
      other.ledger_ = nullptr;
      other.fault_ = nullptr;
    }
    return *this;
  }

  ~MemPool() { Release(); }

  /// Attaches the run's memory ledger and fault injector; `site` names the
  /// fault point growth fires (see FaultInjector::KnownPoints). Either may
  /// be nullptr; call before the first Allocate of the phase being
  /// governed (bytes grown while unbound are only counted by live_bytes).
  void Bind(QueryLedger* ledger, FaultInjector* fault, const char* site) {
    ledger_ = ledger;
    fault_ = fault;
    fault_site_ = site;
  }

  /// Returns 8-byte-aligned storage. May throw std::bad_alloc — from the
  /// system allocator or an armed fault point — with all accounting
  /// untouched; governed runs convert that to kResourceExhausted via the
  /// scheduler backstop.
  void* Allocate(size_t bytes) {
    bytes = AlignUp(bytes, 8);
    if (used_ + bytes > current_size_) Grow(bytes);
    void* p = current_ + used_;
    used_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pool never runs destructors");
    return new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  /// Frees every chunk now (all handed-out pointers become dangling); the
  /// pool stays usable for new allocations. Idempotent — a second Release
  /// (or Release after the unwind of a failed build already ran it) is a
  /// no-op: owned_bytes_ is zeroed with the chunks, so neither
  /// live_bytes() nor the ledger can be double-decremented, and the next
  /// Grow() re-charges from a clean slate. Called by the join builds once
  /// a partitioned insert has relocated all entries into its arena.
  void Release() {
    live_bytes_.fetch_sub(owned_bytes_, std::memory_order_relaxed);
    // Only bytes grown while bound were charged — a pool can grow before
    // Bind(), and those bytes must not be uncharged against the ledger.
    if (ledger_ != nullptr && ledger_charged_ > 0)
      ledger_->Uncharge(ledger_charged_);
    ledger_charged_ = 0;
    owned_bytes_ = 0;
    chunks_.clear();
    current_ = nullptr;
    current_size_ = 0;
    used_ = 0;
  }

  /// Total bytes handed out over the pool's lifetime (diagnostics).
  size_t bytes_allocated() const { return total_allocated_; }
  /// Bytes currently held in chunks by this pool.
  size_t owned_bytes() const { return owned_bytes_; }

  /// Process-wide bytes currently held by all live MemPool chunks — the
  /// transient-build-memory counter hashmap_test asserts on: after a
  /// partitioned build releases its materialize chunks this drops back,
  /// while a CAS build (whose chains live in the chunks) keeps them. The
  /// fault-injection sweep asserts it returns to baseline after every
  /// failed query.
  static size_t live_bytes() {
    return live_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void Grow(size_t min_bytes) {
    FaultHit(fault_, fault_site_, ledger_ != nullptr ? ledger_->token()
                                                     : nullptr);
    const size_t size = std::max(chunk_bytes_, NextPow2(min_bytes));
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    current_ = chunks_.back().get();
    current_size_ = size;
    used_ = 0;
    total_allocated_ += size;
    owned_bytes_ += size;
    live_bytes_.fetch_add(size, std::memory_order_relaxed);
    if (ledger_ != nullptr) {
      ledger_charged_ += size;
      ledger_->Charge(size);
    }
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* current_ = nullptr;
  size_t current_size_ = 0;
  size_t used_ = 0;
  size_t total_allocated_ = 0;
  size_t owned_bytes_ = 0;
  size_t ledger_charged_ = 0;
  QueryLedger* ledger_ = nullptr;
  FaultInjector* fault_ = nullptr;
  const char* fault_site_ = "pool.grow";

  inline static std::atomic<size_t> live_bytes_{0};
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_MEM_POOL_H_
