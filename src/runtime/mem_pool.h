#ifndef VCQ_RUNTIME_MEM_POOL_H_
#define VCQ_RUNTIME_MEM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"

namespace vcq::runtime {

/// Arena allocator for hash-table entries. Each worker thread owns a pool,
/// so entry allocation during parallel builds is contention-free; the pools
/// are kept alive by the operator that owns the hash table. Memory is only
/// reclaimed wholesale when the pool dies — exactly the lifetime of a query
/// operator, which is all an execution engine needs.
class MemPool {
 public:
  explicit MemPool(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;
  MemPool(MemPool&&) = default;
  MemPool& operator=(MemPool&&) = default;

  /// Returns 8-byte-aligned storage; never fails (aborts on OOM).
  void* Allocate(size_t bytes) {
    bytes = AlignUp(bytes, 8);
    if (used_ + bytes > current_size_) Grow(bytes);
    void* p = current_ + used_;
    used_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "pool never runs destructors");
    return new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  /// Total bytes handed out (diagnostics / working-set reporting).
  size_t bytes_allocated() const { return total_allocated_; }

 private:
  void Grow(size_t min_bytes) {
    const size_t size = std::max(chunk_bytes_, NextPow2(min_bytes));
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    current_ = chunks_.back().get();
    current_size_ = size;
    used_ = 0;
    total_allocated_ += size;
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* current_ = nullptr;
  size_t current_size_ = 0;
  size_t used_ = 0;
  size_t total_allocated_ = 0;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_MEM_POOL_H_
