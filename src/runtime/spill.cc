#include "runtime/spill.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include "runtime/metrics.h"
#include "runtime/trace.h"

namespace vcq::runtime {

namespace {

// Fires the named fault point if an injector is attached; mirrors the
// FaultHit helper used at the engines' allocation sites.
inline void SpillFault(FaultInjector* fault, const char* point,
                       const CancelToken* token) {
  if (fault != nullptr) fault->Hit(point, token);
}

[[noreturn]] void ThrowIo(const char* what, const std::string& path) {
  throw std::runtime_error(std::string("spill ") + what + " failed: " + path +
                           ": " + std::strerror(errno));
}

size_t EnvSpillLimit() {
  const char* env = std::getenv("VCQ_SPILL_LIMIT");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

// Records one spill I/O span ("spill.write"/"spill.read"/"spill.open")
// with the byte count in `tuples` and the owning node's site. Event-path
// recording (mutex): spill I/O is milliseconds-scale, the lock is noise.
void SpillSpan(QueryTrace* trace, const char* name, uint64_t start_ns,
               uint32_t site, uint64_t bytes) {
  if (trace == nullptr) return;
  TraceSpan span;
  span.cat = "spill";
  span.name = name;
  span.start_ns = start_ns;
  span.end_ns = QueryTrace::NowNs();
  span.site = site;
  span.tuples = bytes;
  trace->AddEvent(std::move(span));
}

}  // namespace

// ---------------------------------------------------------------------------
// SpillFile

SpillFile::~SpillFile() {
  // Cleanup is fault-TOLERANT: this runs inside the SpillManager's
  // destructor (often during an unwind), so an injected spill.unlink fault
  // is absorbed instead of propagated — a completed query must not fail
  // because removing its scratch file hiccuped. The file is removed either
  // way.
  try {
    SpillFault(mgr_->fault_, "spill.unlink", mgr_->token_);
  } catch (...) {
    // Absorbed by design; the sweep test asserts the point still fires and
    // the query result is unaffected.
  }
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

void SpillFile::Append(uint32_t partition, const void* data, size_t bytes,
                       size_t rows) {
  // Strong guarantee: fault/limit/IO failures leave the segment index and
  // the byte accounting untouched, so an aborted spill never double-counts
  // and never records a segment it cannot read back.
  SpillFault(mgr_->fault_, "spill.write", mgr_->token_);
  mgr_->ChargeSpill(bytes);
  const uint64_t start_ns = QueryTrace::NowNs();
  const char* src = static_cast<const char*>(data);
  size_t done = 0;
  while (done < bytes) {
    ssize_t n = ::pwrite(fd_, src + done, bytes - done,
                         static_cast<off_t>(write_offset_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo("write", path_);
    }
    done += static_cast<size_t>(n);
  }
  segments_.push_back(Segment{partition, write_offset_, bytes, rows});
  write_offset_ += bytes;
  SpillSpan(mgr_->trace_, "spill.write", start_ns, site_, bytes);
}

void SpillFile::Read(const Segment& seg, void* out) const {
  SpillFault(mgr_->fault_, "spill.read", mgr_->token_);
  const uint64_t start_ns = QueryTrace::NowNs();
  char* dst = static_cast<char*>(out);
  size_t done = 0;
  while (done < seg.bytes) {
    ssize_t n = ::pread(fd_, dst + done, seg.bytes - done,
                        static_cast<off_t>(seg.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowIo("read", path_);
    }
    if (n == 0) ThrowIo("read (truncated)", path_);
    done += static_cast<size_t>(n);
  }
  SpillSpan(mgr_->trace_, "spill.read", start_ns, site_, seg.bytes);
}

size_t SpillFile::rows_in_partition(uint32_t partition) const {
  size_t rows = 0;
  for (const Segment& seg : segments_)
    if (seg.partition == partition) rows += seg.rows;
  return rows;
}

// ---------------------------------------------------------------------------
// SpillManager

SpillManager::SpillManager(size_t limit, FaultInjector* fault,
                           const CancelToken* token)
    : limit_(limit != 0 ? limit : EnvSpillLimit()),
      fault_(fault),
      token_(token) {}

SpillManager::~SpillManager() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();  // each SpillFile unlinks itself
  if (!dir_.empty()) ::rmdir(dir_.c_str());
}

std::string SpillManager::BaseDir() {
  if (const char* env = std::getenv("VCQ_SPILL_DIR"); env && *env) return env;
  if (const char* env = std::getenv("TMPDIR"); env && *env) return env;
  return "/tmp";
}

SpillFile* SpillManager::Create(const char* label, uint32_t site) {
  SpillFault(fault_, "spill.open", token_);
  const uint64_t start_ns = QueryTrace::NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    // One directory per execution so concurrent runs (and leftover-file
    // assertions in tests) never interfere.
    static std::atomic<uint64_t> seq{0};
    std::string dir = BaseDir() + "/vcq-spill-" +
                      std::to_string(static_cast<long>(::getpid())) + "-" +
                      std::to_string(seq.fetch_add(1));
    if (::mkdir(dir.c_str(), 0700) != 0 && errno != EEXIST)
      ThrowIo("mkdir", dir);
    dir_ = std::move(dir);
  }
  std::string path =
      dir_ + "/" + label + "-" + std::to_string(files_.size()) + ".spill";
  int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) ThrowIo("open", path);
  files_.emplace_back(new SpillFile(this, fd, std::move(path), site));
  SpillSpan(trace_, "spill.open", start_ns, site, 0);
  return files_.back().get();
}

size_t SpillManager::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.size();
}

std::string SpillManager::dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

void SpillManager::ChargeSpill(size_t bytes) {
  size_t now =
      spilled_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    // Disk is a budget too: the run degrades no further and drains with
    // kResourceExhausted via the bad_alloc backstop.
    spilled_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
  static metrics::Counter& spill_total =
      metrics::Registry::Global().GetCounter("vcq.spill.bytes_total");
  spill_total.Add(bytes);
}

}  // namespace vcq::runtime
