#ifndef VCQ_RUNTIME_HASH_H_
#define VCQ_RUNTIME_HASH_H_

#include <nmmintrin.h>

#include <cstddef>
#include <cstdint>

// Hash functions used by both engines (paper §4.1): Murmur2 (64A) for
// Tectorwise — more instructions, higher throughput when hash computation is
// a standalone primitive loop — and a CRC32-based function for Typer — lower
// latency, which matters when the hash sits on the critical path of a fused
// loop. Either engine can be configured with either function; the defaults
// follow the paper ("each system uses the more beneficial hash function").

namespace vcq::runtime {

inline constexpr uint64_t kMurmurMul = 0xc6a4a7935bd1e995ull;

/// MurmurHash64A specialized for a single 8-byte key.
inline uint64_t HashMurmur2(uint64_t k) {
  constexpr int r = 47;
  uint64_t h = 0x8445d61a4e774912ull ^ (8 * kMurmurMul);
  k *= kMurmurMul;
  k ^= k >> r;
  k *= kMurmurMul;
  h ^= k;
  h *= kMurmurMul;
  h ^= h >> r;
  h *= kMurmurMul;
  h ^= h >> r;
  return h;
}

/// CRC-based hash: combines two 32-bit CRC results (different seeds) into a
/// single 64-bit hash (paper §4.1). One multiply spreads the entropy into
/// the high bits used by the table's Bloom tag.
inline uint64_t HashCrc32(uint64_t k) {
  const uint64_t c1 = _mm_crc32_u64(0xb7e151628aed2a6bull, k);
  const uint64_t c2 = _mm_crc32_u64(0x9e3779b97f4a7c15ull, k);
  return ((c1 << 32) | (c2 & 0xffffffffull)) * kMurmurMul;
}

/// Combines an existing hash with the hash of the next key column
/// (composite-key joins / group-bys; TW "rehash" primitive). Asymmetric in
/// its arguments so that swapped composite key columns hash differently.
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return (seed * kMurmurMul) ^ h;
}

/// MurmurHash64A over an arbitrary byte sequence (inline strings).
uint64_t HashBytes(const void* data, size_t len);

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_HASH_H_
