#ifndef VCQ_RUNTIME_RELATION_H_
#define VCQ_RUNTIME_RELATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "runtime/types.h"

namespace vcq::runtime {

/// Physical type tags for runtime-checked column access.
enum class TypeTag : uint8_t {
  kInt32,   // also dates (day numbers)
  kInt64,   // also fixed-point numerics
  kChar,    // Char<N>; elem_size distinguishes widths
  kVarchar  // Varchar<N>
};

template <typename T>
struct TypeTraits;
template <>
struct TypeTraits<int32_t> {
  static constexpr TypeTag kTag = TypeTag::kInt32;
};
template <>
struct TypeTraits<int64_t> {
  static constexpr TypeTag kTag = TypeTag::kInt64;
};
template <size_t N>
struct TypeTraits<Char<N>> {
  static constexpr TypeTag kTag = TypeTag::kChar;
};
template <size_t N>
struct TypeTraits<Varchar<N>> {
  static constexpr TypeTag kTag = TypeTag::kVarchar;
};

/// Columnar table: named, typed, 64-byte-aligned column buffers. This is the
/// storage layer both engines scan (paper §2: columnar representation).
class Relation {
 public:
  Relation() = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// Allocates (or replaces) a column of `count` elements and returns a
  /// writable view. Also sets the relation's tuple count on first call.
  template <typename T>
  std::span<T> AddColumn(const std::string& name, size_t count) {
    if (tuple_count_ == 0) tuple_count_ = count;
    VCQ_CHECK_MSG(count == tuple_count_, "column cardinality mismatch");
    ColumnData col;
    col.name = name;
    col.tag = TypeTraits<T>::kTag;
    col.elem_size = sizeof(T);
    col.count = count;
    col.data = AllocateAligned(sizeof(T) * count);
    T* ptr = reinterpret_cast<T*>(col.data.get());
    const auto it = index_.find(name);
    if (it != index_.end()) {
      columns_[it->second] = std::move(col);
    } else {
      index_.emplace(name, columns_.size());
      columns_.push_back(std::move(col));
    }
    return {ptr, count};
  }

  template <typename T>
  std::span<const T> Col(std::string_view name) const {
    const ColumnData& c = Lookup(name);
    VCQ_CHECK_MSG(c.tag == TypeTraits<T>::kTag && c.elem_size == sizeof(T),
                  "column type mismatch");
    return {reinterpret_cast<const T*>(c.data.get()), c.count};
  }

  template <typename T>
  std::span<T> MutableCol(std::string_view name) {
    const ColumnData& c = Lookup(name);
    VCQ_CHECK_MSG(c.tag == TypeTraits<T>::kTag && c.elem_size == sizeof(T),
                  "column type mismatch");
    return {reinterpret_cast<T*>(c.data.get()), c.count};
  }

  bool HasColumn(std::string_view name) const {
    return index_.find(std::string(name)) != index_.end();
  }

  size_t tuple_count() const { return tuple_count_; }
  size_t column_count() const { return columns_.size(); }

  /// Total bytes across all columns (working-set accounting, Tab. 5).
  size_t byte_size() const {
    size_t total = 0;
    for (const auto& c : columns_) total += c.elem_size * c.count;
    return total;
  }

  std::vector<std::string> ColumnNames() const {
    std::vector<std::string> names;
    names.reserve(columns_.size());
    for (const auto& c : columns_) names.push_back(c.name);
    return names;
  }

  /// Physical metadata of one column (schema introspection for the SQL
  /// catalog): the type tag plus the element width that disambiguates the
  /// Char<N>/Varchar<N> instantiations sharing a tag.
  struct ColumnMeta {
    TypeTag tag;
    size_t elem_size;
  };
  ColumnMeta Meta(std::string_view name) const {
    const ColumnData& c = Lookup(name);
    return ColumnMeta{c.tag, c.elem_size};
  }

 private:
  struct ColumnData {
    std::string name;
    TypeTag tag;
    size_t elem_size;
    size_t count;
    std::shared_ptr<std::byte[]> data;
  };

  static std::shared_ptr<std::byte[]> AllocateAligned(size_t bytes);

  const ColumnData& Lookup(std::string_view name) const {
    const auto it = index_.find(std::string(name));
    VCQ_CHECK_MSG(it != index_.end(), std::string(name).c_str());
    return columns_[it->second];
  }

  std::vector<ColumnData> columns_;
  std::unordered_map<std::string, size_t> index_;
  size_t tuple_count_ = 0;
};

/// A named set of relations (one TPC-H or SSB instance).
class Database {
 public:
  Relation& Add(const std::string& name) { return relations_[name]; }

  Relation& operator[](const std::string& name) {
    const auto it = relations_.find(name);
    VCQ_CHECK_MSG(it != relations_.end(), name.c_str());
    return it->second;
  }
  const Relation& operator[](const std::string& name) const {
    const auto it = relations_.find(name);
    VCQ_CHECK_MSG(it != relations_.end(), name.c_str());
    return it->second;
  }

  bool Has(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }

  /// Relation names in sorted order (deterministic schema enumeration).
  std::vector<std::string> RelationNames() const {
    std::vector<std::string> names;
    names.reserve(relations_.size());
    for (const auto& [name, _] : relations_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
  }

  size_t byte_size() const {
    size_t total = 0;
    for (const auto& [_, rel] : relations_) total += rel.byte_size();
    return total;
  }

 private:
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_RELATION_H_
