#ifndef VCQ_RUNTIME_CANCEL_H_
#define VCQ_RUNTIME_CANCEL_H_

#include <atomic>
#include <chrono>

namespace vcq::runtime {

/// How an execution ended. Everything except kOk means the result rows were
/// discarded: a query that stops early produces partial garbage, so the API
/// returns an empty QueryResult carrying the status instead.
enum class ExecStatus : uint8_t {
  kOk,
  kCancelled,         ///< ExecutionHandle::Cancel() / CancelToken::Cancel().
  kDeadlineExceeded,  ///< The execution's deadline passed (distinct from an
                      ///< explicit cancel so callers can retry vs. drop).
  kRejected,          ///< Admission control: the scheduler's in-flight limit
                      ///< and its bounded wait queue are both full.
};

inline const char* StatusName(ExecStatus status) {
  switch (status) {
    case ExecStatus::kOk: return "ok";
    case ExecStatus::kCancelled: return "cancelled";
    case ExecStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ExecStatus::kRejected: return "rejected";
  }
  return "?";
}

/// Cooperative cancellation + deadline for one execution. The API layer
/// creates one token per Execute; both engines poll it at morsel
/// boundaries (Typer pipeline loops, the Tectorwise Scan) and stop pulling
/// work once it trips. Interruption is sticky and monotone: once
/// Interrupted() returns true it stays true, which is what makes partial
/// state safe — a pipeline that observes the trip before its region starts
/// does no work at all, so a partially built hash table is never probed
/// (the building region completes, drained, before the probing region
/// begins).
///
/// Workers still run every phase of their region after the trip (barriers
/// stay balanced, per-worker state is still constructed); they just see no
/// morsels. All run-local memory is released exactly as on the normal
/// path when the run state unwinds.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the token is cancelled or its deadline has passed. Cheap on
  /// the hot path: one relaxed load, plus a clock read only while a
  /// deadline is pending (memoized once it expires).
  bool Interrupted() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (Clock::now() < deadline_) return false;
    expired_.store(true, std::memory_order_relaxed);
    return true;
  }

  /// The status an interrupted execution should surface; kOk when the
  /// token never tripped. An explicit Cancel() wins over an expired
  /// deadline (the caller asked first).
  ExecStatus status() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return ExecStatus::kCancelled;
    }
    if (Interrupted()) return ExecStatus::kDeadlineExceeded;
    return ExecStatus::kOk;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> expired_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Null-tolerant poll helper — the spelling the engine morsel loops use
/// (`opt.cancel` is nullptr for un-cancellable runs).
inline bool Interrupted(const CancelToken* token) {
  return token != nullptr && token->Interrupted();
}

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_CANCEL_H_
