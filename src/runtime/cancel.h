#ifndef VCQ_RUNTIME_CANCEL_H_
#define VCQ_RUNTIME_CANCEL_H_

#include <atomic>
#include <chrono>
#include <exception>
#include <new>

namespace vcq::runtime {

/// How an execution ended. Everything except kOk means the result rows were
/// discarded: a query that stops early produces partial garbage, so the API
/// returns an empty QueryResult carrying the status instead.
enum class ExecStatus : uint8_t {
  kOk,
  kCancelled,          ///< ExecutionHandle::Cancel() / CancelToken::Cancel().
  kDeadlineExceeded,   ///< The execution's deadline passed (distinct from an
                       ///< explicit cancel so callers can retry vs. drop).
  kRejected,           ///< Admission control: the scheduler's in-flight limit
                       ///< and its bounded wait queue are both full.
  kResourceExhausted,  ///< A memory budget tripped (per-query or process
                       ///< governor), the scheduler's in-flight byte budget
                       ///< cannot ever fit the query, or an allocation threw
                       ///< bad_alloc mid-build. Retryable: the same query may
                       ///< succeed once concurrent builds release memory.
  kInternalError,      ///< A worker thread threw something unexpected; the
                       ///< query drained cleanly but the failure is not
                       ///< load-dependent, so retrying is unlikely to help.
};

inline const char* StatusName(ExecStatus status) {
  switch (status) {
    case ExecStatus::kOk: return "ok";
    case ExecStatus::kCancelled: return "cancelled";
    case ExecStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ExecStatus::kRejected: return "rejected";
    case ExecStatus::kResourceExhausted: return "resource-exhausted";
    case ExecStatus::kInternalError: return "internal-error";
  }
  return "?";
}

/// Cooperative cancellation + deadline + failure propagation for one
/// execution. The API layer creates one token per Execute; all engines poll
/// it at morsel boundaries (Typer pipeline loops, the Tectorwise Scan, the
/// Volcano ScanOp) and stop pulling work once it trips. Interruption is
/// sticky and monotone: once Interrupted() returns true it stays true, which
/// is what makes partial state safe — a pipeline that observes the trip
/// before its region starts does no work at all, so a partially built hash
/// table is never probed (the building region completes, drained, before the
/// probing region begins).
///
/// Workers still run every phase of their region after the trip (barriers
/// stay balanced, per-worker state is still constructed); they just see no
/// morsels. All run-local memory is released exactly as on the normal path
/// when the run state unwinds. The one exception is a worker that *died*
/// (threw) mid-phase: it can never meet its barriers, so barrier waits are
/// token-aware (Barrier::WaitOrAbort) and the scheduler's backstop converts
/// the escaped exception into Fail() on this token — every surviving waiter
/// then aborts its wait and drains.
///
/// The failure reason is written exactly once (first writer wins, CAS), so
/// concurrent trips — an explicit Cancel racing a budget trip racing a
/// worker bad_alloc — settle deterministically on whichever landed first.
/// A deadline never occupies the reason slot: it is evaluated on read,
/// which preserves the precedence callers rely on (an explicit Cancel()
/// after the deadline already expired still reports kCancelled — the
/// caller asked first).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; safe from any thread, idempotent.
  void Cancel() const { Trip(ExecStatus::kCancelled); }

  /// Trips the token with a failure status (kResourceExhausted,
  /// kInternalError). Safe from any thread; the first trip — Fail or
  /// Cancel — wins and later ones are no-ops. Const because workers hold
  /// the token through `const CancelToken*` (polling is logically const;
  /// failing is the same sticky one-way transition).
  void Fail(ExecStatus reason) const { Trip(reason); }

  /// True once the token is tripped (cancelled / failed) or its deadline
  /// has passed. Cheap on the hot path: one relaxed load, plus a clock read
  /// only while a deadline is pending (memoized once it expires).
  bool Interrupted() const {
    if (reason_.load(std::memory_order_relaxed) != ExecStatus::kOk)
      return true;
    if (!has_deadline_) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (Clock::now() < deadline_) return false;
    expired_.store(true, std::memory_order_relaxed);
    return true;
  }

  /// The status an interrupted execution should surface; kOk when the
  /// token never tripped. An explicit trip (Cancel/Fail) wins over an
  /// expired deadline regardless of wall-clock order.
  ExecStatus status() const {
    const ExecStatus reason = reason_.load(std::memory_order_relaxed);
    if (reason != ExecStatus::kOk) return reason;
    if (Interrupted()) return ExecStatus::kDeadlineExceeded;
    return ExecStatus::kOk;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  void Trip(ExecStatus reason) const {
    ExecStatus expected = ExecStatus::kOk;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
  }

  mutable std::atomic<ExecStatus> reason_{ExecStatus::kOk};
  mutable std::atomic<bool> expired_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Null-tolerant poll helper — the spelling the engine morsel loops use
/// (`opt.cancel` is nullptr for un-cancellable runs).
inline bool Interrupted(const CancelToken* token) {
  return token != nullptr && token->Interrupted();
}

/// Converts the in-flight exception into a sticky token trip: bad_alloc —
/// real or injected — becomes kResourceExhausted (load-dependent,
/// retryable), anything else kInternalError. Must be called from inside a
/// catch block. This is the scheduler backstop's translation step: the
/// exception itself is swallowed and the failure travels as status.
inline void FailCurrentException(const CancelToken* token) {
  if (token == nullptr) return;
  try {
    throw;
  } catch (const std::bad_alloc&) {
    token->Fail(ExecStatus::kResourceExhausted);
  } catch (...) {
    token->Fail(ExecStatus::kInternalError);
  }
}

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_CANCEL_H_
