#ifndef VCQ_RUNTIME_METRICS_H_
#define VCQ_RUNTIME_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Process-wide metrics registry — the aggregate half of the
// observability layer (runtime/trace.h is the per-execution half).
//
// Three metric kinds, all lock-free to update:
//   Counter    monotonically increasing uint64 (".._total" names).
//   Gauge      last-written int64; either pushed by the subsystem or
//              pulled at snapshot time by a registered probe.
//   Histogram  fixed 64-bucket log2-scaled distribution with p50/p95/p99
//              extraction — latency-friendly: relative bucket error is
//              bounded by 2x across the whole uint64 range, no dynamic
//              allocation, race-free Observe from any thread.
//
// Naming scheme (dots; Prometheus rendering maps '.' -> '_'):
//   vcq.<subsystem>.<what>[_total]
//   e.g. vcq.sched.admission_rejects_total, vcq.governor.in_use_bytes,
//        vcq.query.latency_us, vcq.ladder.rung1_ok_total.
// Metrics are created on first Get* and live forever (references remain
// valid); the registry is the single source every surface renders from:
// Session::MetricsSnapshot(), engine_explorer --metrics, sql_shell
// \metrics, and metrics::RenderPrometheus() for scrapers.
//
// Probes: pull-style sources (scheduler queue depth, governor bytes)
// register a callback that refreshes gauges right before a snapshot, so
// hot paths never push values nobody reads. InstallDefaultProbes() wires
// the library's standard probes and is called by both Render entry
// points (idempotent).

namespace vcq::metrics {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram: bucket 0 holds {0, 1}, bucket i>=1 holds
/// [2^i, 2^(i+1)). Observe is wait-free; Percentile interpolates
/// linearly inside the winning bucket (worst-case 2x relative error,
/// exactly what a latency SLO needs and nothing a fixed-size atomic
/// array cannot deliver).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const {
    return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
  }
  /// q in [0, 1]; returns 0 on an empty histogram.
  uint64_t Percentile(double q) const;

  /// Inclusive lower bound / exclusive upper bound of bucket i.
  static uint64_t BucketLo(size_t i);
  static uint64_t BucketHi(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

class Registry {
 public:
  static Registry& Global();

  /// Find-or-create; returned references are stable for process life.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Registers a pull-style refresher run before every snapshot.
  void RegisterProbe(std::function<void()> probe);

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with p50/p95/p99 per histogram; names sorted.
  std::string RenderJson();
  /// Prometheus text exposition ('.' -> '_', summaries for histograms).
  std::string RenderPrometheus();

 private:
  void RunProbes();

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::function<void()>> probes_;
};

/// Wires the library's standard pull gauges (global scheduler queue
/// depth / in-flight / admission waiters / brown-out sheds, governor
/// live and peak bytes). Idempotent; both Render* helpers call it.
void InstallDefaultProbes();

/// Snapshot of Registry::Global() (probes refreshed first).
std::string RenderJson();
std::string RenderPrometheus();

}  // namespace vcq::metrics

#endif  // VCQ_RUNTIME_METRICS_H_
