#ifndef VCQ_RUNTIME_PERF_COUNTERS_H_
#define VCQ_RUNTIME_PERF_COUNTERS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vcq::runtime {

/// Hardware counter capture via the Linux perf-events API — the measurement
/// substrate behind Table 1, Figure 4 and the §4.4 SSB table. Counters are
/// opened individually (not as one group) so partially restricted
/// environments still deliver what they can; anything unavailable reads as
/// NaN and the bench harness prints "n/a". All experiment conclusions that
/// depend only on wall time remain reproducible without any counters
/// (containers often set perf_event_paranoid too high).
class PerfCounters {
 public:
  struct Values {
    double cycles = nan();
    double instructions = nan();
    double l1d_misses = nan();
    double llc_misses = nan();
    double branch_misses = nan();
    /// Cycles stalled on memory (Fig. 4). Tries the architecture-specific
    /// CYCLE_ACTIVITY.STALLS_MEM_ANY raw event, then the generic
    /// stalled-cycles-backend.
    double memory_stall_cycles = nan();

    double ipc() const { return instructions / cycles; }
    static double nan();
  };

  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True if at least cycles+instructions opened successfully.
  bool available() const;

  void Start();
  /// Stops counting and returns deltas since Start().
  Values Stop();

 private:
  struct Event {
    int fd = -1;
    uint64_t start_value = 0;
    double* slot = nullptr;  // which Values field this event feeds
  };

  void OpenEvent(uint32_t type, uint64_t config, double Values::* slot);

  std::vector<Event> events_;
  std::vector<double Values::*> slots_;
  Values current_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_PERF_COUNTERS_H_
