#ifndef VCQ_RUNTIME_OPTIONS_H_
#define VCQ_RUNTIME_OPTIONS_H_

#include <cstddef>

namespace vcq::runtime {

/// Engine-independent spelling of the Tectorwise batch-compaction policy
/// (mapped onto tectorwise::CompactionPolicy by the plan builders).
enum class CompactionMode { kNever, kAlways, kAdaptive };

/// Per-run execution settings, honored by all engines where meaningful.
struct QueryOptions {
  /// Worker threads (morsel-driven parallelism, paper §6).
  size_t threads = 1;
  /// Tectorwise vector size in tuples (Fig. 5 sweep); ignored by Typer and
  /// Volcano.
  size_t vector_size = 1024;
  /// Use AVX-512 primitive variants where available (paper §5);
  /// Tectorwise only.
  bool simd = false;
  /// Morsel size in tuples for table scans.
  size_t morsel_grain = 16384;
  /// Micro-adaptive ordered aggregation (paper §8.4, VectorWise's
  /// optimization): per vector, partition input into per-group selection
  /// vectors and keep partial aggregates in registers when the group count
  /// is small; falls back to hash aggregation otherwise. Tectorwise Q1
  /// only.
  bool adaptive = false;
  /// Relaxed operator fusion (paper §9.1, Peloton's hybrid): break the
  /// fused probe pipeline at explicit materialization boundaries and issue
  /// software prefetches for the staged hash-table buckets. Typer Q9 only.
  bool rof = false;
  /// Batch compaction at the sparse points of the vectorized pipeline
  /// (Select output, hash-join probe output, group-by input); Tectorwise
  /// only. See tectorwise::CompactionPolicy.
  CompactionMode compaction = CompactionMode::kNever;
  /// Density below which kAdaptive compacts (count / vector_size).
  double compaction_threshold = 1.0 / 64;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_OPTIONS_H_
