#ifndef VCQ_RUNTIME_OPTIONS_H_
#define VCQ_RUNTIME_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace vcq::runtime {

class CancelToken;
class FaultInjector;
class KnobChoices;
class NodeTelemetry;
class QueryLedger;
class QueryTrace;
class SpillManager;
class WorkerPool;

/// How much per-execution tracing the run records (see runtime/trace.h):
///   kOff    no spans; every instrumentation point is a null check.
///   kSpans  full span capture — SQL stages, admission wait, gang
///           dispatch, per-pipeline/per-operator execution, spill I/O,
///           governor trips, retry/degradation attempts — exported as
///           Chrome-tracing JSON and EXPLAIN ANALYZE.
enum class TraceLevel : uint8_t { kOff, kSpans };

/// Engine-independent spelling of the Tectorwise batch-compaction policy
/// (mapped onto tectorwise::CompactionPolicy by the plan builders).
enum class CompactionMode { kNever, kAlways, kAdaptive };

/// How join hash tables are filled from the workers' materialized build
/// rows (both engines share the protocol; see runtime::JoinBuild):
///   kCas          one global pass of lock-free CAS inserts; entries stay
///                 scattered across the worker MemPool chunks (the paper's
///                 §3.2 protocol and this repo's seed behavior).
///   kPartitioned  each worker owns a disjoint bucket range and fills it
///                 with plain stores — no CAS, no cross-core bucket
///                 contention — relinking the range's entries into a
///                 contiguous bucket-ordered arena so probe chains walk
///                 sequential memory.
/// Both modes produce identical chain contents; kPartitioned trades one
/// extra scan of the materialized rows per worker for contention-free
/// inserts and cache-friendly chains.
enum class BuildMode { kCas, kPartitioned };

/// Whether prepared-query executions consult the per-PreparedQuery
/// runtime::Tuner for execution knobs (see runtime/tuner.h):
///   kOff     every knob comes from the static QueryOptions fields below —
///            exactly the pre-tuner behavior.
///   kLearn   each execution draws knob arms from the bandit (bounded
///            seed-deterministic exploration, then UCB1) and feeds the
///            measured cost back.
///   kFrozen  every knob resolves to the current best learned arm; no
///            exploration, no state updates.
enum class TuningMode { kOff, kLearn, kFrozen };

/// Per-run execution settings, honored by all engines where meaningful.
struct QueryOptions {
  /// Worker threads (morsel-driven parallelism, paper §6).
  size_t threads = 1;
  /// Worker pool the run executes on; nullptr means the process-global
  /// pool. vcq::Session stamps its pool here at Prepare time so every
  /// execution of the session shares one persistent set of threads (see
  /// runtime::PoolFor in worker_pool.h).
  WorkerPool* pool = nullptr;
  /// Bound on the gang width of this query's parallel regions: at Prepare
  /// time vcq::Session clamps `threads` to
  /// min(pool's scheduler capacity + 1, scheduler_threads) — the caller
  /// acts as worker 0 — so regions always fit the fixed gang worker set
  /// and the pool's worker thread count stays bounded no matter how many
  /// prepared queries are in flight (see runtime::Scheduler).
  /// 0 = no per-query cap beyond the pool's.
  size_t scheduler_threads = 0;
  /// Scheduling stream this run's regions are charged to (weighted fair
  /// queueing between sessions; see Scheduler::CreateStream). Stamped by
  /// vcq::Session at Prepare time; 0 = the shared default stream.
  uint64_t sched_stream = 0;
  /// Cooperative cancellation/deadline token for this run; all engines
  /// poll it at morsel boundaries (see runtime/cancel.h). Stamped per
  /// execution by vcq::PreparedQuery; nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Per-query memory budget in bytes for the run's pools and build
  /// arenas; crossing it trips `cancel` with kResourceExhausted and the
  /// query drains (see runtime/resource_governor.h for the soft-trip
  /// model). 0 = unlimited. Queries also count against the process-wide
  /// ResourceGovernor budget regardless of this setting.
  size_t memory_budget = 0;
  /// The execution's memory ledger; created per run by vcq::PreparedQuery
  /// (from memory_budget) and bound to every MemPool/JoinBuild the run
  /// creates. nullptr = ungoverned (standalone engine calls).
  QueryLedger* ledger = nullptr;
  /// Degrade instead of dying: when set, a memory-budget overage becomes
  /// spill PRESSURE instead of a kResourceExhausted trip — the ledger's
  /// UnderPressure() signal — and spill-capable operators (both engines'
  /// join-build materialize phases and worker-local group tables) evict
  /// state to temp files Grace-style until usage drops back under budget
  /// (see runtime/spill.h). Results stay byte-identical to in-memory runs.
  bool spill = false;
  /// Total spilled-bytes bound for one execution when `spill` is set
  /// (0 = VCQ_SPILL_LIMIT env, else unlimited); exceeding it fails the run
  /// with kResourceExhausted — disk is a budget too.
  size_t spill_limit = 0;
  /// The execution's spill state; created per run by vcq::PreparedQuery
  /// when `spill` is set and passed to the operators. nullptr = spill
  /// disabled (standalone engine calls can stamp their own).
  SpillManager* spill_manager = nullptr;
  /// Fault injector for this run (tests); engines call FaultHit at every
  /// allocation and barrier site. nullptr = no injection. When unset,
  /// vcq::PreparedQuery falls back to FaultInjector::ProcessWide() so the
  /// env-driven stress harness reaches release binaries.
  FaultInjector* fault = nullptr;
  /// Tectorwise vector size in tuples (Fig. 5 sweep); ignored by Typer and
  /// Volcano.
  size_t vector_size = 1024;
  /// Use AVX-512 primitive variants where available (paper §5);
  /// Tectorwise only.
  bool simd = false;
  /// Morsel size in tuples for table scans.
  size_t morsel_grain = 16384;
  /// Micro-adaptive ordered aggregation (paper §8.4, VectorWise's
  /// optimization): per vector, partition input into per-group selection
  /// vectors and keep partial aggregates in registers when the group count
  /// is small; falls back to hash aggregation otherwise. Tectorwise Q1
  /// only.
  bool adaptive = false;
  /// Relaxed operator fusion (paper §9.1, Peloton's hybrid). Typer: every
  /// join query's probe pipeline is split at a block boundary (see
  /// typer::JoinTable::StagedLookup) — stage 1 hashes a block and
  /// prefetches the directory words, stage 2 prefetches the chain heads,
  /// stage 3 resolves with the latency hidden. Tectorwise: findCandidates
  /// switches to the prefetch-staged variant (JoinCandidatesStaged), which
  /// plays the same trick inside each vector.
  bool rof = false;
  /// Join hash-table build protocol, honored by both engines (see
  /// runtime::BuildMode / runtime::JoinBuild). kPartitioned is the default:
  /// contention-free partition-parallel inserts into a contiguous
  /// bucket-ordered entry arena. kCas restores the seed's global CAS pass
  /// (the ablation baseline; bench/ablation_partitioned_build).
  BuildMode build_mode = BuildMode::kPartitioned;
  /// Batch compaction at the sparse points of the vectorized pipeline
  /// (Select output, hash-join probe output, group-by input); Tectorwise
  /// only. See tectorwise::CompactionPolicy.
  CompactionMode compaction = CompactionMode::kNever;
  /// Density below which kAdaptive compacts (count / vector_size).
  double compaction_threshold = 1.0 / 64;
  /// Typer staged-probe (ROF) block size in tuples when `rof` is set;
  /// clamped to [1, typer::kRofMaxBlock]. The tuner sweeps
  /// {128, 256, 512, 1024}.
  size_t rof_block = 512;
  /// Self-tuning mode for prepared-query execution (see TuningMode and
  /// runtime/tuner.h). Session-level setting; standalone engine calls
  /// ignore it.
  TuningMode tuning = TuningMode::kOff;
  /// Seed for the tuner's arm-exploration order. 0 = take VCQ_TUNER_SEED
  /// from the environment, falling back to a fixed default; arm sequences
  /// are reproducible from the resolved seed either way.
  uint64_t tuner_seed = 0;
  /// Resolved per-execution knob choices (written by runtime::Tuner,
  /// stamped by vcq::PreparedQuery per run). Engines overlay these on the
  /// static fields above: Tectorwise reads per-plan-node arms through
  /// ExecContext, Typer reads the per-query arms before entering the
  /// pipeline. nullptr = no overlay.
  const KnobChoices* knobs = nullptr;
  /// Per-node wall-span sink for this execution (reward signal for the
  /// tuner; see runtime::NodeTelemetry). nullptr = not sampled. When
  /// tracing is on, vcq::PreparedQuery points this at the trace's
  /// embedded NodeTelemetry so the tuner and the trace share one
  /// recording path.
  NodeTelemetry* telemetry = nullptr;
  /// Requested trace level. vcq::Session honors it by allocating a
  /// QueryTrace per execution (stamped into QueryResult::trace on
  /// success and failure); standalone engine calls must also set
  /// `trace_sink` — the level alone allocates nothing.
  TraceLevel trace = TraceLevel::kOff;
  /// Span sink for this execution (see runtime/trace.h). Stamped per run
  /// by vcq::PreparedQuery when `trace` != kOff; standalone callers may
  /// stamp their own. nullptr = no span capture.
  QueryTrace* trace_sink = nullptr;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_OPTIONS_H_
