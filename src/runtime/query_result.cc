#include "runtime/query_result.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "runtime/types.h"

namespace vcq::runtime {

void QueryResult::SortRows() { std::sort(rows.begin(), rows.end()); }

std::string QueryResult::ToString(size_t limit) const {
  std::vector<size_t> widths(column_names.size());
  for (size_t c = 0; c < column_names.size(); ++c)
    widths[c] = column_names[c].size();
  const size_t n = (limit == 0) ? rows.size() : std::min(limit, rows.size());
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < rows[r].size(); ++c)
      widths[c] = std::max(widths[c], rows[r][c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c ? " | " : "");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(column_names);
  size_t total = column_names.size() ? 3 * (column_names.size() - 1) : 0;
  for (size_t w : widths) total += w;
  out << std::string(total, '-') << "\n";
  for (size_t r = 0; r < n; ++r) emit_row(rows[r]);
  if (n < rows.size())
    out << "... (" << rows.size() - n << " more rows)\n";
  return out.str();
}

ResultBuilder::ResultBuilder(std::vector<std::string> column_names)
    : width_(column_names.size()) {
  result_.column_names = std::move(column_names);
}

ResultBuilder& ResultBuilder::BeginRow() {
  if (!result_.rows.empty())
    VCQ_CHECK_MSG(result_.rows.back().size() == width_, "short row");
  result_.rows.emplace_back();
  result_.rows.back().reserve(width_);
  return *this;
}

ResultBuilder& ResultBuilder::Int(int64_t v) {
  result_.rows.back().push_back(std::to_string(v));
  return *this;
}

ResultBuilder& ResultBuilder::Numeric(int64_t v, int scale) {
  result_.rows.back().push_back(NumericToString(v, scale));
  return *this;
}

ResultBuilder& ResultBuilder::Avg(int64_t sum, int64_t count, int in_scale,
                                  int out_scale) {
  result_.rows.back().push_back(
      NumericAvgToString(sum, count, in_scale, out_scale));
  return *this;
}

ResultBuilder& ResultBuilder::Date(int32_t days) {
  result_.rows.back().push_back(DateToString(days));
  return *this;
}

ResultBuilder& ResultBuilder::Str(std::string_view s) {
  result_.rows.back().emplace_back(s);
  return *this;
}

QueryResult ResultBuilder::Finish() {
  if (!result_.rows.empty())
    VCQ_CHECK_MSG(result_.rows.back().size() == width_, "short row");
  return std::move(result_);
}

}  // namespace vcq::runtime
