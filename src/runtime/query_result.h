#ifndef VCQ_RUNTIME_QUERY_RESULT_H_
#define VCQ_RUNTIME_QUERY_RESULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cancel.h"

namespace vcq::runtime {

class QueryTrace;

/// Materialized, normalized query result. All engines produce one of these
/// so cross-engine equivalence is a structural comparison. Values are
/// rendered to canonical text (fixed-point with schema scale, ISO dates),
/// which sidesteps float-comparison issues entirely — the engines use exact
/// integer arithmetic throughout, as the paper's prototype does.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<std::vector<std::string>> rows;
  /// How the execution ended. Anything but kOk (cancelled, deadline
  /// exceeded, rejected by admission control) means the execution produced
  /// no rows — partial output is discarded, never surfaced.
  ExecStatus status = ExecStatus::kOk;
  /// Degradation-ladder rung this result came from (see
  /// vcq::PreparedQuery::ExecuteWithDegradation): 0 = as prepared, 1 =
  /// spill enabled, 2 = + reduced threads, 3 = + minimal vectors. Always 0
  /// for plain Execute.
  uint8_t degraded_rung = 0;
  /// Bytes this execution spilled to disk (0 on in-memory runs).
  uint64_t spilled_bytes = 0;
  /// End-to-end wall time of the execution (admission wait included),
  /// stamped by vcq::PreparedQuery on SUCCESS AND FAILURE paths — a
  /// timed-out or tripped run reports how long it lived, not just its
  /// status. 0 only for standalone engine calls.
  uint64_t wall_ns = 0;
  /// The execution's span trace when it ran with
  /// QueryOptions::trace == TraceLevel::kSpans (see runtime/trace.h);
  /// stamped on success and failure alike. nullptr when tracing was off.
  std::shared_ptr<const QueryTrace> trace;

  bool ok() const { return status == ExecStatus::kOk; }

  /// An empty result carrying a non-kOk status.
  static QueryResult Failed(ExecStatus status) {
    QueryResult result;
    result.status = status;
    return result;
  }

  /// Lexicographic row sort for order-insensitive comparison.
  void SortRows();

  /// Renders up to `limit` rows as an aligned table (0 = all).
  std::string ToString(size_t limit = 0) const;

  /// Equality is over the RESULT — names, rows, status — deliberately
  /// excluding the execution-path introspection above (rung, spill bytes,
  /// wall_ns, trace): a degraded, spilled, or traced run is equal to its
  /// in-memory untraced reference (the byte-identity contract every
  /// spill/degradation/trace test asserts with ==).
  friend bool operator==(const QueryResult& a, const QueryResult& b) {
    return a.status == b.status && a.column_names == b.column_names &&
           a.rows == b.rows;
  }
};

/// Row-at-a-time builder with shared formatting, so every engine renders
/// values identically.
class ResultBuilder {
 public:
  explicit ResultBuilder(std::vector<std::string> column_names);

  ResultBuilder& BeginRow();
  ResultBuilder& Int(int64_t v);
  ResultBuilder& Numeric(int64_t v, int scale);
  /// round(sum/count) at out_scale digits, exact decimal arithmetic.
  ResultBuilder& Avg(int64_t sum, int64_t count, int in_scale, int out_scale);
  ResultBuilder& Date(int32_t days);
  ResultBuilder& Str(std::string_view s);

  QueryResult Finish();

 private:
  QueryResult result_;
  size_t width_;
};

}  // namespace vcq::runtime

#endif  // VCQ_RUNTIME_QUERY_RESULT_H_
