#include "runtime/tuner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/env_util.h"
#include "runtime/metrics.h"

namespace vcq::runtime {
namespace {

// SplitMix64 — same generator the retry jitter and fault injector use.
uint64_t Mix(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// UCB1 exploration constant. Costs are normalized by the knob's best
// observed mean, so the bonus is in "fractions of the best arm's cost";
// 0.25 keeps post-exploration revisits rare unless arms are within a few
// percent of each other.
constexpr double kUcbC = 0.25;

const char* KindName(KnobKind kind) {
  switch (kind) {
    case KnobKind::kVectorSize: return "vector_size";
    case KnobKind::kCompaction: return "compaction";
    case KnobKind::kBuildMode: return "build_mode";
    case KnobKind::kRof: return "rof";
    case KnobKind::kRofBlock: return "rof_block";
  }
  return "?";
}

std::string ArmLabel(KnobKind kind, int64_t value) {
  switch (kind) {
    case KnobKind::kCompaction:
      if (value == kCompactionNever) return "never";
      if (value == kCompactionAlways) return "always";
      return "adaptive(1/" + std::to_string(value) + ")";
    case KnobKind::kBuildMode:
      return value == 0 ? "cas" : "partitioned";
    case KnobKind::kRof:
      return value == 0 ? "off" : "on";
    default:
      return std::to_string(value);
  }
}

}  // namespace

Tuner::Tuner(uint64_t seed, size_t explore_reps)
    : seed_(seed), explore_reps_(explore_reps == 0 ? 1 : explore_reps) {}

uint64_t Tuner::ResolveSeed(uint64_t requested) {
  if (requested != 0) return requested;
  const int64_t env = vcq::EnvInt("VCQ_TUNER_SEED", 0);
  if (env != 0) return static_cast<uint64_t>(env);
  return 0x5eedf00dcafeull;  // fixed default: deterministic out of the box
}

size_t Tuner::RegisterKnob(std::string name, uint32_t node, KnobKind kind,
                           std::vector<int64_t> arms, size_t default_arm) {
  std::lock_guard<std::mutex> lock(mu_);
  Knob knob;
  knob.name = std::move(name);
  knob.node = node;
  knob.kind = kind;
  knob.arms = std::move(arms);
  if (knob.arms.empty()) knob.arms.push_back(0);
  knob.default_arm = default_arm < knob.arms.size() ? default_arm : 0;
  knob.visits.assign(knob.arms.size(), 0);
  knob.mean_cost.assign(knob.arms.size(), 0.0);
  knob.min_cost.assign(knob.arms.size(), 0.0);
  // Seed-shuffled exploration order (Fisher–Yates), derived from the seed
  // and the knob's position so every knob gets a distinct but reproducible
  // permutation.
  knob.explore_order.resize(knob.arms.size());
  for (size_t i = 0; i < knob.explore_order.size(); ++i) {
    knob.explore_order[i] = i;
  }
  uint64_t rng = seed_ ^ (0x9e3779b97f4a7c15ull * (knobs_.size() + 1));
  for (size_t i = knob.explore_order.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(Mix(rng) % i);
    std::swap(knob.explore_order[i - 1], knob.explore_order[j]);
  }
  knobs_.push_back(std::move(knob));
  return knobs_.size() - 1;
}

size_t Tuner::ExploreTotalLocked() const {
  size_t total = 0;
  for (const Knob& knob : knobs_) total += knob.arms.size() * explore_reps_;
  return total;
}

size_t Tuner::BestArmLocked(const Knob& knob) const {
  // Lowest observed cost (the per-arm minimum — robust to load spikes);
  // unvisited arms lose to any visited arm, ties go to the default arm so
  // an untrained tuner behaves as today's statics.
  size_t best = knob.default_arm;
  bool have = knob.visits[best] > 0;
  double best_cost = have ? knob.min_cost[best] : 0.0;
  for (size_t a = 0; a < knob.arms.size(); ++a) {
    if (knob.visits[a] == 0) continue;
    if (!have || knob.min_cost[a] < best_cost) {
      have = true;
      best = a;
      best_cost = knob.min_cost[a];
    }
  }
  return best;
}

size_t Tuner::UcbArmLocked(const Knob& knob) const {
  uint64_t total = 0;
  double best_min = 0.0;
  bool have = false;
  for (size_t a = 0; a < knob.arms.size(); ++a) {
    total += knob.visits[a];
    if (knob.visits[a] > 0 && (!have || knob.min_cost[a] < best_min)) {
      have = true;
      best_min = knob.min_cost[a];
    }
  }
  // An arm with no observations (its exploration runs all failed) is tried
  // first, as in classic UCB1.
  for (size_t a = 0; a < knob.arms.size(); ++a) {
    if (knob.visits[a] == 0) return a;
  }
  if (best_min <= 0.0) return knob.default_arm;
  size_t best = knob.default_arm;
  double best_score = 0.0;
  bool first = true;
  for (size_t a = 0; a < knob.arms.size(); ++a) {
    double cost = knob.min_cost[a] / best_min;  // 1.0 = best arm so far
    double bonus = kUcbC * std::sqrt(2.0 * std::log(static_cast<double>(
                                               total)) /
                                     static_cast<double>(knob.visits[a]));
    double score = cost - bonus;
    if (first || score < best_score) {
      first = false;
      best = a;
      best_score = score;
    }
  }
  return best;
}

void Tuner::Resolve(TuningMode mode, KnobChoices* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool learning = mode == TuningMode::kLearn && !frozen_;
  if (learning) {
    // Fleet-wide bandit activity (runtime/metrics.h): one draw per
    // learning execution, across every tuner instance.
    static metrics::Counter& draws =
        metrics::Registry::Global().GetCounter("vcq.tuner.draws_total");
    draws.Add();
  }
  const size_t n = learning ? resolves_++ : 0;
  const size_t explore_total = ExploreTotalLocked();
  for (size_t k = 0; k < knobs_.size(); ++k) {
    const Knob& knob = knobs_[k];
    size_t arm;
    if (!learning) {
      arm = BestArmLocked(knob);
    } else if (n < explore_total) {
      // Exploration: find which knob's window execution n falls into; that
      // knob cycles its shuffled arms, everyone else holds the default.
      size_t offset = n;
      size_t active = knobs_.size();
      for (size_t j = 0; j < knobs_.size(); ++j) {
        size_t window = knobs_[j].arms.size() * explore_reps_;
        if (offset < window) {
          active = j;
          break;
        }
        offset -= window;
      }
      arm = (k == active)
                ? knob.explore_order[offset % knob.arms.size()]
                : knob.default_arm;
    } else {
      arm = UcbArmLocked(knob);
    }
    out->Add(knob.node, knob.kind, knob.arms[arm]);
  }
}

void Tuner::Observe(const KnobChoices& choices, const NodeTelemetry& telemetry,
                    uint64_t query_ns, uint64_t query_tuples) {
  if (query_tuples == 0) query_tuples = 1;
  const double query_cost =
      static_cast<double>(query_ns) / static_cast<double>(query_tuples);
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) return;
  for (Knob& knob : knobs_) {
    int64_t value = choices.Get(knob.node, knob.kind);
    if (value == KnobChoices::kUnset) continue;
    auto it = std::find(knob.arms.begin(), knob.arms.end(), value);
    if (it == knob.arms.end()) continue;
    size_t arm = static_cast<size_t>(it - knob.arms.begin());
    double cost = query_cost;
    if (knob.node != kQueryKnob && telemetry.HasSpan(knob.node)) {
      cost = telemetry.NsPerTuple(knob.node);
    }
    knob.visits[arm]++;
    knob.mean_cost[arm] +=
        (cost - knob.mean_cost[arm]) / static_cast<double>(knob.visits[arm]);
    knob.min_cost[arm] = knob.visits[arm] == 1
                             ? cost
                             : std::min(knob.min_cost[arm], cost);
  }
}

void Tuner::Freeze() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = true;
}

bool Tuner::frozen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frozen_;
}

bool Tuner::Converged() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Knob& knob : knobs_) {
    for (uint64_t v : knob.visits) {
      if (v < explore_reps_) return false;
    }
  }
  return true;
}

std::string Tuner::Describe() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "tuner: seed=" << seed_ << " knobs=" << knobs_.size()
      << " executions=" << resolves_
      << " explore_total=" << ExploreTotalLocked()
      << (frozen_ ? " [frozen]" : "") << "\n";
  for (const Knob& knob : knobs_) {
    out << "  " << knob.name << " (" << KindName(knob.kind);
    if (knob.node != kQueryKnob) out << " @node " << knob.node;
    out << "):";
    size_t best = BestArmLocked(knob);
    for (size_t a = 0; a < knob.arms.size(); ++a) {
      out << " " << ArmLabel(knob.kind, knob.arms[a]) << "[n="
          << knob.visits[a];
      if (knob.visits[a] > 0) {
        out << " " << std::llround(knob.min_cost[a] * 100) / 100.0
            << "ns/t";
      }
      out << "]";
      if (a == best) out << "*";
    }
    out << "\n";
  }
  return out.str();
}

size_t Tuner::knob_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return knobs_.size();
}

const std::string& Tuner::knob_name(size_t knob) const {
  std::lock_guard<std::mutex> lock(mu_);
  return knobs_[knob].name;
}

std::vector<Tuner::ArmStats> Tuner::ArmsOf(size_t knob) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Knob& k = knobs_[knob];
  std::vector<ArmStats> out(k.arms.size());
  for (size_t a = 0; a < k.arms.size(); ++a) {
    out[a] = ArmStats{k.arms[a], k.visits[a], k.mean_cost[a], k.min_cost[a]};
  }
  return out;
}

size_t Tuner::BestArm(size_t knob) const {
  std::lock_guard<std::mutex> lock(mu_);
  return BestArmLocked(knobs_[knob]);
}

}  // namespace vcq::runtime
