#include "volcano/volcano.h"

#include <algorithm>
#include <cstdint>

#include "runtime/hash.h"

namespace vcq::volcano {

bool ScanOp::Next(Row* out) {
  if (next_ >= count_) return false;
  // Poll the token at a coarse row granularity (and on the first tuple, so
  // an already-tripped token produces zero rows): a trip turns the rest of
  // the scan into end-of-stream and the pipeline drains tuple-by-tuple.
  if (next_ % kCancelPollRows == 0 && runtime::Interrupted(cancel_)) {
    next_ = count_;
    return false;
  }
  out->resize(accessors_.size());
  for (size_t k = 0; k < accessors_.size(); ++k)
    (*out)[k] = accessors_[k](next_);
  ++next_;
  return true;
}

bool SelectOp::Next(Row* out) {
  while (child_->Next(out)) {
    if (predicate_(*out)) return true;
  }
  return false;
}

bool ProjectOp::Next(Row* out) {
  if (!child_->Next(out)) return false;
  const size_t base = out->size();
  out->resize(base + exprs_.size());
  for (size_t k = 0; k < exprs_.size(); ++k)
    (*out)[base + k] = exprs_[k](*out);
  return true;
}

void HashJoinOp::Open() {
  build_->Open();
  probe_->Open();
  table_.clear();
  Row row;
  while (build_->Next(&row)) {
    std::vector<int64_t> payload(payload_slots_.size());
    for (size_t k = 0; k < payload_slots_.size(); ++k)
      payload[k] = row[payload_slots_[k]];
    table_.emplace(row[build_key_slot_], std::move(payload));
  }
  have_range_ = false;
}

bool HashJoinOp::Next(Row* out) {
  while (true) {
    if (have_range_ && it_ != range_end_) {
      *out = probe_row_;
      const size_t base = out->size();
      out->resize(base + payload_slots_.size());
      for (size_t k = 0; k < it_->second.size(); ++k)
        (*out)[base + k] = it_->second[k];
      ++it_;
      return true;
    }
    have_range_ = false;
    if (!probe_->Next(&probe_row_)) return false;
    auto range = table_.equal_range(probe_row_[probe_key_slot_]);
    if (range.first == range.second) continue;
    it_ = range.first;
    range_end_ = range.second;
    have_range_ = true;
  }
}

size_t GroupByOp::VecHash::operator()(const std::vector<int64_t>& v) const {
  uint64_t h = 0x2545f4914f6cdd1dull;
  for (int64_t x : v)
    h = runtime::HashCombine(h,
                             runtime::HashMurmur2(static_cast<uint64_t>(x)));
  return h;
}

void GroupByOp::Open() {
  child_->Open();
  groups_.clear();
  // Fold identities so min/max work without per-group "seen" flags.
  std::vector<int64_t> init(agg_slots_.size(), 0);
  for (size_t a = 0; a < agg_ops_.size(); ++a) {
    if (agg_ops_[a] == AggOp::kMin) init[a] = INT64_MAX;
    if (agg_ops_[a] == AggOp::kMax) init[a] = INT64_MIN;
  }
  Row row;
  std::vector<int64_t> key(key_slots_.size());
  while (child_->Next(&row)) {
    for (size_t k = 0; k < key_slots_.size(); ++k) key[k] = row[key_slots_[k]];
    auto [it, inserted] = groups_.try_emplace(key, init);
    std::vector<int64_t>& aggs = it->second;
    for (size_t a = 0; a < agg_slots_.size(); ++a) {
      switch (agg_ops_[a]) {
        case AggOp::kSum:
          aggs[a] += row[agg_slots_[a]];
          break;
        case AggOp::kCount:
          aggs[a] += 1;
          break;
        case AggOp::kMin:
          aggs[a] = std::min(aggs[a], row[agg_slots_[a]]);
          break;
        case AggOp::kMax:
          aggs[a] = std::max(aggs[a], row[agg_slots_[a]]);
          break;
      }
    }
  }
  emit_ = groups_.begin();
  materialized_ = true;
}

bool GroupByOp::Next(Row* out) {
  if (!materialized_ || emit_ == groups_.end()) return false;
  out->clear();
  out->reserve(Width());
  out->insert(out->end(), emit_->first.begin(), emit_->first.end());
  out->insert(out->end(), emit_->second.begin(), emit_->second.end());
  ++emit_;
  return true;
}

}  // namespace vcq::volcano
