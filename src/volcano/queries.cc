#include <algorithm>
#include <cstdio>
#include <tuple>

#include "runtime/types.h"
#include "volcano/queries.h"
#include "volcano/volcano.h"

namespace vcq::volcano {

using runtime::Char;
using runtime::Database;
using runtime::DateFromString;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::Relation;
using runtime::ResultBuilder;
using runtime::Varchar;
using runtime::YearOf;

namespace {

int64_t PackKeys(int64_t a, int64_t b) {
  return static_cast<int64_t>((static_cast<uint64_t>(a) << 32) |
                              static_cast<uint32_t>(b));
}

}  // namespace

QueryResult RunQ1(const Database& db, const QueryOptions& opt,
                  const runtime::QueryParams& params) {
  const Relation& lineitem = db["lineitem"];
  const auto shipdate = lineitem.Col<int32_t>("l_shipdate");
  const auto rf = lineitem.Col<Char<1>>("l_returnflag");
  const auto ls = lineitem.Col<Char<1>>("l_linestatus");
  const auto qty = lineitem.Col<int64_t>("l_quantity");
  const auto extprice = lineitem.Col<int64_t>("l_extendedprice");
  const auto discount = lineitem.Col<int64_t>("l_discount");
  const auto tax = lineitem.Col<int64_t>("l_tax");
  const int32_t cutoff = params.Date("shipdate");

  auto scan = std::make_unique<ScanOp>(lineitem.tuple_count(), opt.cancel);
  const size_t s_date = scan->AddAccessor([&](size_t i) { return shipdate[i]; });
  const size_t s_rf = scan->AddAccessor([&](size_t i) { return rf[i].data[0]; });
  const size_t s_ls = scan->AddAccessor([&](size_t i) { return ls[i].data[0]; });
  const size_t s_qty = scan->AddAccessor([&](size_t i) { return qty[i]; });
  const size_t s_price =
      scan->AddAccessor([&](size_t i) { return extprice[i]; });
  const size_t s_disc =
      scan->AddAccessor([&](size_t i) { return discount[i]; });
  const size_t s_tax = scan->AddAccessor([&](size_t i) { return tax[i]; });

  auto select = std::make_unique<SelectOp>(
      std::move(scan),
      [s_date, cutoff](const Row& r) { return r[s_date] <= cutoff; });
  auto project = std::make_unique<ProjectOp>(std::move(select));
  const size_t s_dp = project->AddExpr([s_price, s_disc](const Row& r) {
    return r[s_price] * (100 - r[s_disc]);
  });
  const size_t s_ch = project->AddExpr(
      [s_dp, s_tax](const Row& r) { return r[s_dp] * (100 + r[s_tax]); });

  auto group =
      std::make_unique<GroupByOp>(std::move(project),
                                  std::vector<size_t>{s_rf, s_ls});
  group->AddAgg(s_qty);
  group->AddAgg(s_price);
  group->AddAgg(s_dp);
  group->AddAgg(s_ch);
  group->AddAgg(s_disc);
  group->AddAgg(SIZE_MAX);

  group->Open();
  Row row;
  std::vector<Row> rows;
  while (group->Next(&row)) rows.push_back(row);
  std::sort(rows.begin(), rows.end());

  ResultBuilder rb({"l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"});
  for (const Row& r : rows) {
    const char c_rf = static_cast<char>(r[0]);
    const char c_ls = static_cast<char>(r[1]);
    rb.BeginRow()
        .Str(std::string_view(&c_rf, 1))
        .Str(std::string_view(&c_ls, 1))
        .Numeric(r[2], 2)
        .Numeric(r[3], 2)
        .Numeric(r[4], 4)
        .Numeric(r[5], 6)
        .Avg(r[2], r[7], 2, 2)
        .Avg(r[3], r[7], 2, 2)
        .Avg(r[6], r[7], 2, 2)
        .Int(r[7]);
  }
  // A tripped token (cancel or expired deadline) drained the scans early:
  // discard the partial rows and surface the trip's status.
  if (runtime::Interrupted(opt.cancel))
    return QueryResult::Failed(opt.cancel->status());
  return rb.Finish();
}

QueryResult RunQ6(const Database& db, const QueryOptions& opt,
                  const runtime::QueryParams& params) {
  const Relation& lineitem = db["lineitem"];
  const auto shipdate = lineitem.Col<int32_t>("l_shipdate");
  const auto discount = lineitem.Col<int64_t>("l_discount");
  const auto quantity = lineitem.Col<int64_t>("l_quantity");
  const auto extprice = lineitem.Col<int64_t>("l_extendedprice");
  const int32_t lo = params.Date("shipdate_lo");
  const int32_t hi = params.Date("shipdate_hi");
  const int64_t disc_lo = params.Int("discount_lo");
  const int64_t disc_hi = params.Int("discount_hi");
  const int64_t qty_max = params.Int("quantity_max");

  auto scan = std::make_unique<ScanOp>(lineitem.tuple_count(), opt.cancel);
  const size_t s_date =
      scan->AddAccessor([&](size_t i) { return shipdate[i]; });
  const size_t s_disc =
      scan->AddAccessor([&](size_t i) { return discount[i]; });
  const size_t s_qty =
      scan->AddAccessor([&](size_t i) { return quantity[i]; });
  const size_t s_price =
      scan->AddAccessor([&](size_t i) { return extprice[i]; });

  auto select = std::make_unique<SelectOp>(
      std::move(scan), [=](const Row& r) {
        return r[s_date] >= lo && r[s_date] <= hi && r[s_disc] >= disc_lo &&
               r[s_disc] <= disc_hi && r[s_qty] < qty_max;
      });
  auto project = std::make_unique<ProjectOp>(std::move(select));
  const size_t s_rev = project->AddExpr(
      [=](const Row& r) { return r[s_price] * r[s_disc]; });

  project->Open();
  Row row;
  int64_t total = 0;
  while (project->Next(&row)) total += row[s_rev];

  ResultBuilder rb({"revenue"});
  rb.BeginRow().Numeric(total, 4);
  // A tripped token (cancel or expired deadline) drained the scans early:
  // discard the partial rows and surface the trip's status.
  if (runtime::Interrupted(opt.cancel))
    return QueryResult::Failed(opt.cancel->status());
  return rb.Finish();
}

QueryResult RunQ3(const Database& db, const QueryOptions& opt,
                  const runtime::QueryParams& params) {
  const Relation& customer = db["customer"];
  const Relation& orders = db["orders"];
  const Relation& lineitem = db["lineitem"];
  const int32_t date = params.Date("date");
  const Char<10> building = Char<10>::From(params.Str("segment"));

  const auto c_custkey = customer.Col<int32_t>("c_custkey");
  const auto c_mkt = customer.Col<Char<10>>("c_mktsegment");
  auto cscan = std::make_unique<ScanOp>(customer.tuple_count(), opt.cancel);
  const size_t sc_key =
      cscan->AddAccessor([&](size_t i) { return c_custkey[i]; });
  const size_t sc_flag = cscan->AddAccessor(
      [&, building](size_t i) { return c_mkt[i] == building ? 1 : 0; });
  auto csel = std::make_unique<SelectOp>(
      std::move(cscan), [=](const Row& r) { return r[sc_flag] != 0; });

  const auto o_orderkey = orders.Col<int32_t>("o_orderkey");
  const auto o_custkey = orders.Col<int32_t>("o_custkey");
  const auto o_orderdate = orders.Col<int32_t>("o_orderdate");
  const auto o_shipprio = orders.Col<int32_t>("o_shippriority");
  auto oscan = std::make_unique<ScanOp>(orders.tuple_count(), opt.cancel);
  const size_t so_key =
      oscan->AddAccessor([&](size_t i) { return o_orderkey[i]; });
  const size_t so_cust =
      oscan->AddAccessor([&](size_t i) { return o_custkey[i]; });
  const size_t so_date =
      oscan->AddAccessor([&](size_t i) { return o_orderdate[i]; });
  const size_t so_prio =
      oscan->AddAccessor([&](size_t i) { return o_shipprio[i]; });
  auto osel = std::make_unique<SelectOp>(
      std::move(oscan), [=](const Row& r) { return r[so_date] < date; });

  // customer ⋈ orders (customer is build side, no payload needed).
  auto hj1 = std::make_unique<HashJoinOp>(std::move(csel), std::move(osel),
                                          sc_key, so_cust,
                                          std::vector<size_t>{});

  const auto l_orderkey = lineitem.Col<int32_t>("l_orderkey");
  const auto l_shipdate = lineitem.Col<int32_t>("l_shipdate");
  const auto l_extprice = lineitem.Col<int64_t>("l_extendedprice");
  const auto l_discount = lineitem.Col<int64_t>("l_discount");
  auto lscan = std::make_unique<ScanOp>(lineitem.tuple_count(), opt.cancel);
  const size_t sl_key =
      lscan->AddAccessor([&](size_t i) { return l_orderkey[i]; });
  const size_t sl_date =
      lscan->AddAccessor([&](size_t i) { return l_shipdate[i]; });
  const size_t sl_price =
      lscan->AddAccessor([&](size_t i) { return l_extprice[i]; });
  const size_t sl_disc =
      lscan->AddAccessor([&](size_t i) { return l_discount[i]; });
  auto lsel = std::make_unique<SelectOp>(
      std::move(lscan), [=](const Row& r) { return r[sl_date] > date; });

  // (customer ⋈ orders) ⋈ lineitem; payload = orderdate, shippriority.
  auto hj2 = std::make_unique<HashJoinOp>(
      std::move(hj1), std::move(lsel), so_key, sl_key,
      std::vector<size_t>{so_date, so_prio});
  const size_t j_date = 4;  // probe width 4, payload appended after
  const size_t j_prio = 5;

  auto project = std::make_unique<ProjectOp>(std::move(hj2));
  const size_t s_rev = project->AddExpr([=](const Row& r) {
    return r[sl_price] * (100 - r[sl_disc]);
  });

  auto group = std::make_unique<GroupByOp>(
      std::move(project), std::vector<size_t>{sl_key, j_date, j_prio});
  group->AddAgg(s_rev);

  group->Open();
  Row row;
  struct Out {
    int64_t orderkey, orderdate, prio, revenue;
  };
  std::vector<Out> rows;
  while (group->Next(&row))
    rows.push_back(Out{row[0], row[1], row[2], row[3]});
  std::sort(rows.begin(), rows.end(), [](const Out& a, const Out& b) {
    return std::tie(b.revenue, a.orderdate, a.orderkey) <
           std::tie(a.revenue, b.orderdate, b.orderkey);
  });
  if (rows.size() > 10) rows.resize(10);

  ResultBuilder rb(
      {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
  for (const Out& r : rows) {
    rb.BeginRow()
        .Int(r.orderkey)
        .Numeric(r.revenue, 4)
        .Date(static_cast<int32_t>(r.orderdate))
        .Int(r.prio);
  }
  // A tripped token (cancel or expired deadline) drained the scans early:
  // discard the partial rows and surface the trip's status.
  if (runtime::Interrupted(opt.cancel))
    return QueryResult::Failed(opt.cancel->status());
  return rb.Finish();
}

QueryResult RunQ9(const Database& db, const QueryOptions& opt,
                  const runtime::QueryParams& params) {
  const Relation& part = db["part"];
  const Relation& supplier = db["supplier"];
  const Relation& partsupp = db["partsupp"];
  const Relation& orders = db["orders"];
  const Relation& lineitem = db["lineitem"];
  const Relation& nation = db["nation"];
  const std::string color(params.Str("color"));

  const auto p_partkey = part.Col<int32_t>("p_partkey");
  const auto p_name = part.Col<Varchar<55>>("p_name");
  auto pscan = std::make_unique<ScanOp>(part.tuple_count(), opt.cancel);
  const size_t sp_key =
      pscan->AddAccessor([&](size_t i) { return p_partkey[i]; });
  const size_t sp_green = pscan->AddAccessor(
      [&, color](size_t i) { return p_name[i].Contains(color) ? 1 : 0; });
  auto psel = std::make_unique<SelectOp>(
      std::move(pscan), [=](const Row& r) { return r[sp_green] != 0; });

  const auto ps_partkey = partsupp.Col<int32_t>("ps_partkey");
  const auto ps_suppkey = partsupp.Col<int32_t>("ps_suppkey");
  const auto ps_cost = partsupp.Col<int64_t>("ps_supplycost");
  auto psscan = std::make_unique<ScanOp>(partsupp.tuple_count(), opt.cancel);
  const size_t sps_part =
      psscan->AddAccessor([&](size_t i) { return ps_partkey[i]; });
  const size_t sps_packed = psscan->AddAccessor(
      [&](size_t i) { return PackKeys(ps_partkey[i], ps_suppkey[i]); });
  const size_t sps_cost =
      psscan->AddAccessor([&](size_t i) { return ps_cost[i]; });

  // part ⋈ partsupp (semi-join filter on green parts).
  auto hj_part = std::make_unique<HashJoinOp>(std::move(psel),
                                              std::move(psscan), sp_key,
                                              sps_part, std::vector<size_t>{});

  const auto l_orderkey = lineitem.Col<int32_t>("l_orderkey");
  const auto l_partkey = lineitem.Col<int32_t>("l_partkey");
  const auto l_suppkey = lineitem.Col<int32_t>("l_suppkey");
  const auto l_extprice = lineitem.Col<int64_t>("l_extendedprice");
  const auto l_discount = lineitem.Col<int64_t>("l_discount");
  const auto l_quantity = lineitem.Col<int64_t>("l_quantity");
  auto lscan = std::make_unique<ScanOp>(lineitem.tuple_count(), opt.cancel);
  const size_t sl_order =
      lscan->AddAccessor([&](size_t i) { return l_orderkey[i]; });
  const size_t sl_supp =
      lscan->AddAccessor([&](size_t i) { return l_suppkey[i]; });
  const size_t sl_packed = lscan->AddAccessor(
      [&](size_t i) { return PackKeys(l_partkey[i], l_suppkey[i]); });
  const size_t sl_price =
      lscan->AddAccessor([&](size_t i) { return l_extprice[i]; });
  const size_t sl_disc =
      lscan->AddAccessor([&](size_t i) { return l_discount[i]; });
  const size_t sl_qty =
      lscan->AddAccessor([&](size_t i) { return l_quantity[i]; });

  // partsupp ⋈ lineitem on the composite key; payload = supplycost.
  auto hj_ps = std::make_unique<HashJoinOp>(
      std::move(hj_part), std::move(lscan), sps_packed, sl_packed,
      std::vector<size_t>{sps_cost});
  const size_t j_cost = 6;  // lineitem scan width 6

  const auto s_suppkey = supplier.Col<int32_t>("s_suppkey");
  const auto s_nationkey = supplier.Col<int32_t>("s_nationkey");
  auto sscan = std::make_unique<ScanOp>(supplier.tuple_count(), opt.cancel);
  const size_t ss_key =
      sscan->AddAccessor([&](size_t i) { return s_suppkey[i]; });
  const size_t ss_nation =
      sscan->AddAccessor([&](size_t i) { return s_nationkey[i]; });

  auto hj_supp = std::make_unique<HashJoinOp>(
      std::move(sscan), std::move(hj_ps), ss_key, sl_supp,
      std::vector<size_t>{ss_nation});
  const size_t j_nation = 7;

  const auto o_orderkey = orders.Col<int32_t>("o_orderkey");
  const auto o_orderdate = orders.Col<int32_t>("o_orderdate");
  auto oscan = std::make_unique<ScanOp>(orders.tuple_count(), opt.cancel);
  const size_t so_key =
      oscan->AddAccessor([&](size_t i) { return o_orderkey[i]; });
  const size_t so_year =
      oscan->AddAccessor([&](size_t i) { return YearOf(o_orderdate[i]); });

  auto hj_ord = std::make_unique<HashJoinOp>(
      std::move(oscan), std::move(hj_supp), so_key, sl_order,
      std::vector<size_t>{so_year});
  const size_t j_year = 8;

  auto project = std::make_unique<ProjectOp>(std::move(hj_ord));
  const size_t s_amount = project->AddExpr([=](const Row& r) {
    return r[sl_price] * (100 - r[sl_disc]) - r[j_cost] * r[sl_qty];
  });

  auto group = std::make_unique<GroupByOp>(
      std::move(project), std::vector<size_t>{j_nation, j_year});
  group->AddAgg(s_amount);

  group->Open();
  Row row;
  struct Out {
    int64_t nationkey, year, profit;
  };
  std::vector<Out> rows;
  while (group->Next(&row)) rows.push_back(Out{row[0], row[1], row[2]});
  const auto n_name = nation.Col<Char<25>>("n_name");
  std::sort(rows.begin(), rows.end(), [&](const Out& a, const Out& b) {
    const auto an = n_name[a.nationkey].View();
    const auto bn = n_name[b.nationkey].View();
    if (an != bn) return an < bn;
    return a.year > b.year;
  });
  ResultBuilder rb({"nation", "o_year", "sum_profit"});
  for (const Out& r : rows) {
    rb.BeginRow()
        .Str(n_name[r.nationkey].View())
        .Int(r.year)
        .Numeric(r.profit, 4);
  }
  // A tripped token (cancel or expired deadline) drained the scans early:
  // discard the partial rows and surface the trip's status.
  if (runtime::Interrupted(opt.cancel))
    return QueryResult::Failed(opt.cancel->status());
  return rb.Finish();
}

QueryResult RunQ18(const Database& db, const QueryOptions& opt,
                   const runtime::QueryParams& params) {
  const Relation& lineitem = db["lineitem"];
  const Relation& orders = db["orders"];
  const Relation& customer = db["customer"];
  const int64_t qty_min = params.Int("quantity_min");

  const auto l_orderkey = lineitem.Col<int32_t>("l_orderkey");
  const auto l_quantity = lineitem.Col<int64_t>("l_quantity");
  auto lscan = std::make_unique<ScanOp>(lineitem.tuple_count(), opt.cancel);
  const size_t sl_key =
      lscan->AddAccessor([&](size_t i) { return l_orderkey[i]; });
  const size_t sl_qty =
      lscan->AddAccessor([&](size_t i) { return l_quantity[i]; });

  auto group = std::make_unique<GroupByOp>(std::move(lscan),
                                           std::vector<size_t>{sl_key});
  group->AddAgg(sl_qty);
  auto having = std::make_unique<SelectOp>(
      std::move(group), [qty_min](const Row& r) { return r[1] > qty_min; });

  const auto o_orderkey = orders.Col<int32_t>("o_orderkey");
  const auto o_custkey = orders.Col<int32_t>("o_custkey");
  const auto o_orderdate = orders.Col<int32_t>("o_orderdate");
  const auto o_totalprice = orders.Col<int64_t>("o_totalprice");
  auto oscan = std::make_unique<ScanOp>(orders.tuple_count(), opt.cancel);
  const size_t so_key =
      oscan->AddAccessor([&](size_t i) { return o_orderkey[i]; });
  const size_t so_cust =
      oscan->AddAccessor([&](size_t i) { return o_custkey[i]; });
  const size_t so_date =
      oscan->AddAccessor([&](size_t i) { return o_orderdate[i]; });
  const size_t so_total =
      oscan->AddAccessor([&](size_t i) { return o_totalprice[i]; });

  // qualifying orderkeys ⋈ orders; payload = sum(l_quantity).
  auto hj_o = std::make_unique<HashJoinOp>(std::move(having),
                                           std::move(oscan), 0, so_key,
                                           std::vector<size_t>{1});
  const size_t j_qty = 4;

  // ⋈ customer (FK integrity filter; the name is derived from custkey).
  const auto c_custkey = customer.Col<int32_t>("c_custkey");
  auto cscan = std::make_unique<ScanOp>(customer.tuple_count(), opt.cancel);
  const size_t sc_key =
      cscan->AddAccessor([&](size_t i) { return c_custkey[i]; });
  auto hj_c = std::make_unique<HashJoinOp>(std::move(cscan), std::move(hj_o),
                                           sc_key, so_cust,
                                           std::vector<size_t>{});

  hj_c->Open();
  Row row;
  struct Out {
    int64_t custkey, orderkey, orderdate, totalprice, qty;
  };
  std::vector<Out> rows;
  while (hj_c->Next(&row)) {
    rows.push_back(
        Out{row[so_cust], row[so_key], row[so_date], row[so_total],
            row[j_qty]});
  }
  std::sort(rows.begin(), rows.end(), [](const Out& a, const Out& b) {
    return std::tie(b.totalprice, a.orderdate, a.orderkey) <
           std::tie(a.totalprice, b.orderdate, b.orderkey);
  });
  if (rows.size() > 100) rows.resize(100);

  ResultBuilder rb({"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                    "o_totalprice", "sum_qty"});
  for (const Out& r : rows) {
    // c_name is a pure function of c_custkey in this dbgen (as in TPC-H).
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09lld",
                  static_cast<long long>(r.custkey));
    rb.BeginRow()
        .Str(name)
        .Int(r.custkey)
        .Int(r.orderkey)
        .Date(static_cast<int32_t>(r.orderdate))
        .Numeric(r.totalprice, 2)
        .Numeric(r.qty, 2);
  }
  // A tripped token (cancel or expired deadline) drained the scans early:
  // discard the partial rows and surface the trip's status.
  if (runtime::Interrupted(opt.cancel))
    return QueryResult::Failed(opt.cancel->status());
  return rb.Finish();
}

}  // namespace vcq::volcano
