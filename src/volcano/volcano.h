#ifndef VCQ_VOLCANO_VOLCANO_H_
#define VCQ_VOLCANO_VOLCANO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

// Volcano: a classic tuple-at-a-time, pull-based interpreter (paper §1,
// Table 6 row "System R"). This is the model both studied paradigms
// replaced; the library ships it as a runnable baseline so the
// order-of-magnitude interpretation overhead the paper talks about is
// measurable in the same harness (see Table 2's substitution note in
// DESIGN.md §4). Deliberately interpretation-heavy: virtual next() per
// tuple, std::function expression evaluation per row, no morsel
// parallelism (single-threaded, as classic Volcano without exchange
// operators).
//
// Rows are arrays of int64 value slots; scans translate columns (including
// string predicates) into slots via accessor closures.
//
// Cancellation: every pipeline bottoms out in one or more ScanOps, which
// poll an optional CancelToken every kCancelPollRows tuples and report
// end-of-stream on a trip. Blocking operators (HashJoinOp::Open,
// GroupByOp::Open) drain a cancelled child quickly because the child's
// scans stop producing; the query runner then surfaces the token's status
// instead of the partial result.

#include "runtime/cancel.h"

namespace vcq::volcano {

using Row = std::vector<int64_t>;

class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  /// Produces one tuple; false at end of stream.
  virtual bool Next(Row* out) = 0;
  virtual size_t Width() const = 0;
};

/// Table scan: one accessor closure per output slot, invoked per row —
/// the per-tuple type dispatch vectorization amortizes away (paper §4.2).
class ScanOp : public Operator {
 public:
  /// Tuples between CancelToken polls: frequent enough that even this
  /// engine's slow per-tuple pace reacts to a trip within microseconds,
  /// rare enough that the atomic load never shows up in Table 2.
  static constexpr size_t kCancelPollRows = 1024;

  explicit ScanOp(size_t tuple_count,
                  const runtime::CancelToken* cancel = nullptr)
      : count_(tuple_count), cancel_(cancel) {}

  /// Returns the slot index of the added column/derived value.
  size_t AddAccessor(std::function<int64_t(size_t)> fn) {
    accessors_.push_back(std::move(fn));
    return accessors_.size() - 1;
  }

  void Open() override { next_ = 0; }
  bool Next(Row* out) override;
  size_t Width() const override { return accessors_.size(); }

 private:
  size_t count_;
  const runtime::CancelToken* cancel_;
  size_t next_ = 0;
  std::vector<std::function<int64_t(size_t)>> accessors_;
};

/// Tuple-at-a-time filter.
class SelectOp : public Operator {
 public:
  SelectOp(std::unique_ptr<Operator> child,
           std::function<bool(const Row&)> predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  size_t Width() const override { return child_->Width(); }

 private:
  std::unique_ptr<Operator> child_;
  std::function<bool(const Row&)> predicate_;
};

/// Appends computed slots to each tuple.
class ProjectOp : public Operator {
 public:
  explicit ProjectOp(std::unique_ptr<Operator> child)
      : child_(std::move(child)) {}

  size_t AddExpr(std::function<int64_t(const Row&)> fn) {
    exprs_.push_back(std::move(fn));
    return child_->Width() + exprs_.size() - 1;
  }

  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  size_t Width() const override { return child_->Width() + exprs_.size(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<std::function<int64_t(const Row&)>> exprs_;
};

/// Hash join: drains the build side on Open, then streams probe tuples,
/// emitting probe row ++ build payload for every match (handles duplicate
/// build keys via multimap iteration).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> build, std::unique_ptr<Operator> probe,
             size_t build_key_slot, size_t probe_key_slot,
             std::vector<size_t> build_payload_slots)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        build_key_slot_(build_key_slot),
        probe_key_slot_(probe_key_slot),
        payload_slots_(std::move(build_payload_slots)) {}

  void Open() override;
  bool Next(Row* out) override;
  size_t Width() const override {
    return probe_->Width() + payload_slots_.size();
  }

 private:
  std::unique_ptr<Operator> build_;
  std::unique_ptr<Operator> probe_;
  size_t build_key_slot_;
  size_t probe_key_slot_;
  std::vector<size_t> payload_slots_;

  std::unordered_multimap<int64_t, std::vector<int64_t>> table_;
  Row probe_row_;
  std::unordered_multimap<int64_t, std::vector<int64_t>>::iterator it_;
  std::unordered_multimap<int64_t, std::vector<int64_t>>::iterator range_end_;
  bool have_range_ = false;
};

/// Full-materialization hash aggregation: sum/count/min/max over key slots.
class GroupByOp : public Operator {
 public:
  enum class AggOp : uint8_t { kSum, kCount, kMin, kMax };

  explicit GroupByOp(std::unique_ptr<Operator> child,
                     std::vector<size_t> key_slots)
      : child_(std::move(child)), key_slots_(std::move(key_slots)) {}

  /// Adds sum(child slot); pass SIZE_MAX for count(*). Returns the output
  /// slot (keys first, then aggregates).
  size_t AddAgg(size_t child_slot) {
    return AddAggOp(child_slot == SIZE_MAX ? AggOp::kCount : AggOp::kSum,
                    child_slot);
  }

  /// Adds an aggregate of the given kind over `child_slot` (ignored for
  /// kCount). Returns the output slot (keys first, then aggregates).
  size_t AddAggOp(AggOp op, size_t child_slot = SIZE_MAX) {
    agg_slots_.push_back(child_slot);
    agg_ops_.push_back(op);
    return key_slots_.size() + agg_slots_.size() - 1;
  }

  void Open() override;
  bool Next(Row* out) override;
  size_t Width() const override {
    return key_slots_.size() + agg_slots_.size();
  }

 private:
  struct VecHash {
    size_t operator()(const std::vector<int64_t>& v) const;
  };

  std::unique_ptr<Operator> child_;
  std::vector<size_t> key_slots_;
  std::vector<size_t> agg_slots_;
  std::vector<AggOp> agg_ops_;
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, VecHash>
      groups_;
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>,
                     VecHash>::iterator emit_;
  bool materialized_ = false;
};

}  // namespace vcq::volcano

#endif  // VCQ_VOLCANO_VOLCANO_H_
