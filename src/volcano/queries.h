#ifndef VCQ_VOLCANO_QUERIES_H_
#define VCQ_VOLCANO_QUERIES_H_

#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/query_result.h"
#include "runtime/relation.h"

// Volcano implementations of the TPC-H subset. Single-threaded (classic
// Volcano has no intra-query parallelism without exchange operators); the
// options' thread count is ignored. The options' CancelToken is honored:
// scans poll it every ScanOp::kCancelPollRows tuples, and a tripped run
// returns QueryResult::Failed with the trip's status and zero rows.
//
// Predicate constants come from the catalog's named parameters (the same
// QueryParams the other engines bind), so Volcano can serve as the
// differential reference for non-default bindings and ad-hoc SQL plans
// (src/sql/) instead of baking the spec values in.

namespace vcq::volcano {

runtime::QueryResult RunQ1(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ6(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ3(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ9(const runtime::Database& db,
                           const runtime::QueryOptions& opt,
                           const runtime::QueryParams& params);
runtime::QueryResult RunQ18(const runtime::Database& db,
                            const runtime::QueryOptions& opt,
                            const runtime::QueryParams& params);

}  // namespace vcq::volcano

#endif  // VCQ_VOLCANO_QUERIES_H_
