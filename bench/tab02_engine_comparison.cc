// Table 2 (substitution, DESIGN.md #4): the paper compares its prototypes
// against HyPer and Actian Vector; both are closed source and not
// installable here. We keep the table's purpose — locating the two
// paradigms relative to each other — with Typer (push+compilation) vs
// Tectorwise (pull+vectorization) per query. The Volcano interpreter no
// longer appears here: its job is correctness, not speed — it is the
// single-threaded differential oracle the SQL front door (src/sql/)
// checks Tectorwise against, and benchmarking an intentionally naive
// interpreter next to the prototypes only restated §1's motivation.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(0.5);
  const int reps = benchutil::EnvReps(2);
  benchutil::PrintHeader(
      "Table 2: engine comparison (HyPer ~ Typer, VectorWise ~ Tectorwise)",
      "SF=1, 1 thread: the two paradigms within small factors of each other",
      "SF=" + benchutil::Fmt(sf, 2) + ", 1 thread");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  benchutil::Table table({"query", "Typer ms", "Ty build", "Ty probe",
                          "TW ms", "TW build", "TW probe", "TW/Typer"});
  for (Query q : TpchQueries()) {
    const auto typer =
        benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
    const auto tw =
        benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
    table.AddRow({QueryName(q), benchutil::Fmt(typer.ms, 1),
                  benchutil::Fmt(typer.build_ms, 1),
                  benchutil::Fmt(typer.probe_ms, 1), benchutil::Fmt(tw.ms, 1),
                  benchutil::Fmt(tw.build_ms, 1),
                  benchutil::Fmt(tw.probe_ms, 1),
                  benchutil::Fmt(tw.ms / typer.ms, 2)});
  }
  table.Print();
  std::printf(
      "\npaper shape: the two state-of-the-art paradigms are within small "
      "factors of each other (Table 2's headline); Volcano now serves as "
      "the SQL differential oracle instead of a bench contender.\n");
  return 0;
}
