// Table 2 (substitution, DESIGN.md #4): the paper compares its prototypes
// against HyPer and Actian Vector; both are closed source and not
// installable here. We keep the table's purpose — locating the prototypes
// relative to other architectures — by adding the library's Volcano
// tuple-at-a-time interpreter as the "traditional engine" frame of
// reference that §1/§4.2 invoke.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(0.5);
  const int reps = benchutil::EnvReps(2);
  benchutil::PrintHeader(
      "Table 2: engine comparison (HyPer/VectorWise replaced by Volcano "
      "baseline)",
      "SF=1, 1 thread: HyPer ~ Typer, VectorWise ~ TW, prototypes "
      "slightly faster",
      "SF=" + benchutil::Fmt(sf, 2) +
          ", 1 thread; Volcano = pull+interpretation baseline");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  benchutil::Table table({"query", "Typer ms", "Ty build", "Ty probe",
                          "TW ms", "TW build", "TW probe", "Volcano ms",
                          "Volcano/Typer"});
  for (Query q : TpchQueries()) {
    const auto typer =
        benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
    const auto tw =
        benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
    const auto vol =
        benchutil::MeasureQuery(db, Engine::kVolcano, q, opt, reps);
    table.AddRow({QueryName(q), benchutil::Fmt(typer.ms, 1),
                  benchutil::Fmt(typer.build_ms, 1),
                  benchutil::Fmt(typer.probe_ms, 1), benchutil::Fmt(tw.ms, 1),
                  benchutil::Fmt(tw.build_ms, 1),
                  benchutil::Fmt(tw.probe_ms, 1), benchutil::Fmt(vol.ms, 1),
                  benchutil::Fmt(vol.ms / typer.ms, 1)});
  }
  table.Print();
  std::printf(
      "\npaper shape: the two state-of-the-art paradigms are within small "
      "factors of each other, while tuple-at-a-time interpretation is an "
      "order of magnitude behind (the gap both paradigms were built to "
      "close).\n");
  return 0;
}
