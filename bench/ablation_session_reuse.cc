// Ablation (paper §8.1 flavor): what the Session API buys. Compilation's
// edge is repeated execution of prepared statements — HyPer and Vectorwise
// both separate a prepare phase from many cheap executes over a resident
// server process. Two measurements:
//
//  1. per-query: one-shot RunQuery (validate + build the plan + execute,
//     every call) vs Execute() on a warm PreparedQuery (plan built once at
//     prepare time), at threads {1, 8}. Prepared execution must be no
//     slower than one-shot anywhere; the win concentrates where plan
//     construction is a visible fraction of a short query.
//
//  2. mixed stream: a fixed round-robin stream over the TPC-H subset,
//     serial one-shot vs prepared handles kept in flight (4 concurrent
//     ExecuteAsync) on one shared Session — the QPS uplift from pool reuse
//     plus morsel-level interleaving of concurrent queries.
//
// Env: VCQ_SF (default 0.5; VCQ_QUICK=1 shrinks to 0.05), VCQ_REPS.

#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"

namespace {

using vcq::Engine;
using vcq::Query;

/// The mixed stream: every TPC-H query on both multi-threaded engines.
struct StreamItem {
  Engine engine;
  Query query;
};

std::vector<StreamItem> MakeStream(size_t length) {
  std::vector<StreamItem> mix;
  for (Query q : vcq::TpchQueries()) {
    mix.push_back({Engine::kTyper, q});
    mix.push_back({Engine::kTectorwise, q});
  }
  std::vector<StreamItem> stream;
  for (size_t i = 0; i < length; ++i) stream.push_back(mix[i % mix.size()]);
  return stream;
}

}  // namespace

int main() {
  using namespace vcq;
  const bool quick = benchutil::Quick();
  const double sf = benchutil::EnvSf(quick ? 0.05 : 0.5);
  const int reps = benchutil::EnvReps(quick ? 2 : 5);
  benchutil::PrintHeader(
      "Ablation: prepared-query reuse on a warm Session (paper Sec. 8.1)",
      "compilation's edge is repeated execution of prepared statements",
      "SF=" + benchutil::Fmt(sf, 2) + ", reps=" + std::to_string(reps));

  runtime::Database db = datagen::GenerateTpch(sf);
  Session session(db);

  // --- 1. per-query: one-shot vs warm prepared --------------------------
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    std::printf("\n-- per-query, %zu thread(s) --\n", threads);
    benchutil::Table table({"query", "engine", "one-shot ms", "prepared ms",
                            "speedup"});
    for (Query q : TpchQueries()) {
      for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
        runtime::QueryOptions opt;
        opt.threads = threads;
        const auto one_shot = benchutil::Measure(
            [&] { RunQuery(db, e, q, opt); }, reps);
        PreparedQuery prepared = session.Prepare(e, q, opt);
        const auto warm =
            benchutil::Measure([&] { prepared.Execute(); }, reps);
        table.AddRow({QueryName(q), EngineName(e),
                      benchutil::Fmt(one_shot.ms, 2),
                      benchutil::Fmt(warm.ms, 2),
                      benchutil::Fmt(one_shot.ms / warm.ms, 2) + "x"});
      }
    }
    table.Print();
  }

  // --- 2. mixed stream: serial one-shot vs in-flight prepared -----------
  const size_t stream_len = quick ? 20 : 60;
  const std::vector<StreamItem> stream = MakeStream(stream_len);
  runtime::QueryOptions opt;
  opt.threads = quick ? 2 : 4;

  // Each mode is measured reps times with the shared median machinery —
  // single passes over the stream are too noisy to compare.
  std::vector<PreparedQuery> prepared;
  for (Query q : TpchQueries()) {
    prepared.push_back(session.Prepare(Engine::kTyper, q, opt));
    prepared.push_back(session.Prepare(Engine::kTectorwise, q, opt));
  }

  const auto serial = benchutil::Measure(
      [&] {
        for (const StreamItem& item : stream)
          RunQuery(db, item.engine, item.query, opt);
      },
      reps);
  const auto warm_serial = benchutil::Measure(
      [&] {
        for (size_t i = 0; i < stream.size(); ++i)
          prepared[i % prepared.size()].Execute();
      },
      reps);
  constexpr size_t kInFlight = 4;
  const auto concurrent = benchutil::Measure(
      [&] {
        std::deque<ExecutionHandle> inflight;
        for (size_t i = 0; i < stream.size(); ++i) {
          if (inflight.size() == kInFlight) {
            inflight.front().Wait();
            inflight.pop_front();
          }
          inflight.push_back(prepared[i % prepared.size()].ExecuteAsync());
        }
        while (!inflight.empty()) {
          inflight.front().Wait();
          inflight.pop_front();
        }
      },
      reps);
  const double serial_ms = serial.ms;
  const double warm_serial_ms = warm_serial.ms;
  const double concurrent_ms = concurrent.ms;

  std::printf("\n-- mixed stream: %zu executions over %zu prepared queries, "
              "%zu worker threads each, %u hardware threads --\n",
              stream.size(), prepared.size(), opt.threads,
              std::thread::hardware_concurrency());
  benchutil::Table table({"mode", "ms", "QPS", "uplift"});
  const auto qps = [&](double ms) {
    return benchutil::Fmt(1000.0 * static_cast<double>(stream.size()) / ms, 1);
  };
  table.AddRow({"one-shot RunQuery, serial", benchutil::Fmt(serial_ms, 1),
                qps(serial_ms), "1.00x"});
  table.AddRow({"prepared Execute, serial", benchutil::Fmt(warm_serial_ms, 1),
                qps(warm_serial_ms),
                benchutil::Fmt(serial_ms / warm_serial_ms, 2) + "x"});
  table.AddRow({"prepared, 4 in flight", benchutil::Fmt(concurrent_ms, 1),
                qps(concurrent_ms),
                benchutil::Fmt(serial_ms / concurrent_ms, 2) + "x"});
  table.Print();
  std::printf(
      "\npaper shape: a resident session amortizes preparation and keeps "
      "the pool warm; overlapping executions then fill scheduling gaps the "
      "serial loop leaves on the table (Sec. 8.1's prepared-statement "
      "serving model). The in-flight uplift needs spare hardware threads — "
      "on a single-core host it degenerates to scheduling overhead.\n");
  return 0;
}
