// Figures 11 (substitution, DESIGN.md #4): the paper compares Skylake
// against AMD Threadripper; cross-CPU comparison is not reproducible on a
// single host, so this bench produces the per-engine queries/second vs
// %-cores-used curves (the plots' axes) on the host CPU, including the
// SMT segment past the physical core count.

#include <cstdio>
#include <thread>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(2);
  const size_t hw = benchutil::EnvThreads(0);

  benchutil::PrintHeader(
      "Figure 11: queries/second vs cores used (host CPU only)",
      "SF=100, Skylake vs Threadripper; queries/s vs % cores",
      "SF=" + benchutil::Fmt(sf, 2) + ", host threads 1.." +
          std::to_string(hw) +
          " (cross-CPU comparison not reproducible here)");

  runtime::Database db = datagen::GenerateTpch(sf);

  std::vector<size_t> counts;
  for (size_t t = 1; t < hw; t *= 2) counts.push_back(t);
  counts.push_back(hw);
  if (benchutil::Quick()) counts = {1, 2};

  benchutil::Table table({"query", "threads", "%cores", "Typer q/s",
                          "TW q/s"});
  for (Query q : TpchQueries()) {
    for (const size_t t : counts) {
      runtime::QueryOptions opt;
      opt.threads = t;
      const auto typer =
          benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
      const auto tw =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
      table.AddRow({QueryName(q), std::to_string(t),
                    benchutil::Fmt(100.0 * t / hw, 0),
                    benchutil::Fmt(1000.0 / typer.ms, 2),
                    benchutil::Fmt(1000.0 / tw.ms, 2)});
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: throughput rises with cores for both engines; the "
      "engines' relative order per query (TW ahead on joins, Typer on Q1) "
      "is preserved at every core count.\n");
  return 0;
}
