// Ablation: memory governance under concurrent pressure (PR 6). One pool,
// one mix — heavy join queries (Q9: four hash-table builds) racing short
// scan queries (Q6: no build side) — run under three governance modes:
//   off         no budgets anywhere: every heavy build lands at once and
//               the process memory peak is the sum of all of them;
//   per-query   each heavy execution carries a QueryOptions::memory_budget
//               below its build footprint: the ledger soft-trips it
//               (kResourceExhausted), the build drains, the peak collapses
//               to whatever fit under the budgets;
//   admission   no per-query budget, but the scheduler gets a byte budget
//               ~1.5x one heavy build (memory-aware admission): heavies
//               serialize through admission instead of overcommitting, all
//               of them COMPLETE, and the peak stays near a single build.
// Reported per mode: heavy outcomes (ok / exhausted / rejected), the
// process governor's high-water mark across the mix, short-query p50/p99
// (does governance protect the short queries' tail?), and VmHWM.
// The run must end cleanly in every mode — no abort, no leak: live bytes
// are asserted back at baseline after each mode.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/query_catalog.h"
#include "api/session.h"
#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/mem_pool.h"
#include "runtime/resource_governor.h"
#include "runtime/worker_pool.h"

namespace {

using namespace vcq;
using runtime::ExecStatus;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResourceGovernor;

/// Process high-water mark from the kernel, in KiB (monotonic over the
/// process lifetime — comparable across modes only in "off"-first order).
size_t VmHwmKb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

enum class Mode { kOff, kPerQuery, kAdmission };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kPerQuery: return "per-query";
    case Mode::kAdmission: return "admission";
  }
  return "?";
}

struct ModeResult {
  size_t heavy_ok = 0;
  size_t heavy_exhausted = 0;
  size_t heavy_rejected = 0;
  size_t gov_peak = 0;
  double short_p50_ms = 0;
  double short_p99_ms = 0;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[idx];
}

ModeResult RunMode(const runtime::Database& db, Mode mode, size_t threads,
                   int rounds, size_t heavies_per_round,
                   int shorts_per_round) {
  const size_t heavy_estimate = EstimatedBuildBytes(db, Query::kQ9);
  runtime::WorkerPool pool(threads);
  if (mode == Mode::kAdmission) {
    pool.scheduler().SetMemoryBudget(heavy_estimate + heavy_estimate / 2);
    pool.scheduler().SetAdmissionLimit(0, 64);  // queue, don't reject
  }
  Session session(db, pool);

  QueryOptions heavy_opt;
  heavy_opt.threads = threads;
  if (mode == Mode::kPerQuery)
    heavy_opt.memory_budget = heavy_estimate / 4;  // guaranteed trip
  PreparedQuery heavy =
      session.Prepare(Engine::kTyper, Query::kQ9, heavy_opt);

  QueryOptions short_opt;
  short_opt.threads = 1;
  PreparedQuery shorter =
      session.Prepare(Engine::kTectorwise, Query::kQ6, short_opt);

  const size_t live_baseline = runtime::MemPool::live_bytes();
  ResourceGovernor::Global().ResetPeak();

  ModeResult out;
  std::vector<double> short_ms;
  for (int round = 0; round < rounds; ++round) {
    std::vector<ExecutionHandle> handles;
    for (size_t h = 0; h < heavies_per_round; ++h)
      handles.push_back(heavy.ExecuteAsync());
    for (int s = 0; s < shorts_per_round; ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      const QueryResult r = shorter.Execute();
      const auto t1 = std::chrono::steady_clock::now();
      if (r.ok())
        short_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    for (ExecutionHandle& h : handles) {
      switch (h.Wait().status) {
        case ExecStatus::kOk: ++out.heavy_ok; break;
        case ExecStatus::kResourceExhausted: ++out.heavy_exhausted; break;
        case ExecStatus::kRejected: ++out.heavy_rejected; break;
        default: break;
      }
    }
  }
  out.gov_peak = ResourceGovernor::Global().peak();
  std::sort(short_ms.begin(), short_ms.end());
  out.short_p50_ms = Percentile(short_ms, 0.50);
  out.short_p99_ms = Percentile(short_ms, 0.99);

  // The clean-drain contract holds in every mode, including the one where
  // every heavy execution failed mid-build.
  if (runtime::MemPool::live_bytes() != live_baseline) {
    std::fprintf(stderr, "LEAK in mode %s: live %zu != baseline %zu\n",
                 ModeName(mode), runtime::MemPool::live_bytes(),
                 live_baseline);
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const double sf = benchutil::EnvSf(benchutil::Quick() ? 0.05 : 0.2);
  const size_t threads = benchutil::EnvThreads(4);
  const int rounds = benchutil::Quick() ? 2 : 6;
  const size_t heavies = 3;
  const int shorts = benchutil::Quick() ? 10 : 40;

  benchutil::PrintHeader(
      "Ablation: resource governor under concurrent memory pressure",
      "not a paper artifact — robustness ablation for the PR 6 governor",
      "TPC-H sf " + benchutil::Fmt(sf, 2) + ", " + std::to_string(threads) +
          " threads, " + std::to_string(rounds) + " rounds x " +
          std::to_string(heavies) + " heavy Q9 + " + std::to_string(shorts) +
          " short Q6");

  const runtime::Database db = datagen::GenerateTpch(sf);
  std::printf("heavy (Q9) build estimate: %.1f MiB\n\n",
              EstimatedBuildBytes(db, Query::kQ9) / double(1 << 20));

  benchutil::Table table({"mode", "heavy ok", "exhausted", "rejected",
                          "gov peak MiB", "short p50 ms", "short p99 ms",
                          "VmHWM MiB"});
  for (Mode mode : {Mode::kOff, Mode::kPerQuery, Mode::kAdmission}) {
    const ModeResult r = RunMode(db, mode, threads, rounds, heavies, shorts);
    table.AddRow({ModeName(mode), std::to_string(r.heavy_ok),
                  std::to_string(r.heavy_exhausted),
                  std::to_string(r.heavy_rejected),
                  benchutil::Fmt(r.gov_peak / double(1 << 20), 1),
                  benchutil::Fmt(r.short_p50_ms, 2),
                  benchutil::Fmt(r.short_p99_ms, 2),
                  benchutil::Fmt(VmHwmKb() / 1024.0, 0)});
  }
  table.Print();
  std::printf(
      "\nReading: 'off' overcommits (peak ~ heavies x build); 'per-query'\n"
      "trips the heavies early (exhausted > 0, peak collapses); 'admission'\n"
      "completes every heavy while holding the peak near one build.\n");
  return 0;
}
