// Ablation: adaptive batch compaction (cf. "Data Chunk Compaction in
// Vectorized Execution", SIGMOD'25, and paper §5.1 / Fig. 7). A selective
// filter feeding a join and an aggregate leaves only a trickle of live
// tuples per vector; every downstream primitive then pays full per-vector
// interpretation overhead for a handful of tuples. The compaction points
// (Select output, hash-join probe output, group-by input) merge those
// sparse batches into full dense vectors. This bench sweeps filter
// selectivity x policy on a TPC-H Q9-shaped filter -> 4 joins -> group-by
// pipeline and reports runtime, average batch density, and compaction
// counts. "vs never" uses medians of per-rep paired ratios, which are
// robust against the slow clock drift of shared machines.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "benchutil/bench.h"
#include "common/env_util.h"
#include "runtime/relation.h"
#include "runtime/worker_pool.h"
#include "tectorwise/hash_group.h"
#include "tectorwise/hash_join.h"
#include "tectorwise/operators.h"
#include "tectorwise/primitives_simd.h"
#include "tectorwise/steps.h"

namespace {

using namespace vcq;
using namespace vcq::tectorwise;
using runtime::Relation;

constexpr int32_t kFilterDomain = 100000;  // f_filter uniform in [0, domain)

struct Tables {
  Relation fact;
  Relation dim1;
  Relation dim2;
  Relation dim3;
  Relation dim4;
};

Tables MakeTables(size_t fact_rows, size_t dim_rows) {
  Tables t;
  auto f_key1 = t.fact.AddColumn<int32_t>("f_key1", fact_rows);
  auto f_key2 = t.fact.AddColumn<int32_t>("f_key2", fact_rows);
  auto f_key3 = t.fact.AddColumn<int32_t>("f_key3", fact_rows);
  auto f_key4 = t.fact.AddColumn<int32_t>("f_key4", fact_rows);
  auto f_filter = t.fact.AddColumn<int32_t>("f_filter", fact_rows);
  auto f_val = t.fact.AddColumn<int64_t>("f_val", fact_rows);
  auto f_price = t.fact.AddColumn<int64_t>("f_price", fact_rows);
  auto f_disc = t.fact.AddColumn<int64_t>("f_disc", fact_rows);
  auto f_qty = t.fact.AddColumn<int64_t>("f_qty", fact_rows);
  auto f_cost = t.fact.AddColumn<int64_t>("f_cost", fact_rows);
  std::mt19937_64 rng(17);
  for (size_t i = 0; i < fact_rows; ++i) {
    f_key1[i] = static_cast<int32_t>(rng() % dim_rows);
    f_key2[i] = static_cast<int32_t>(rng() % dim_rows);
    f_key3[i] = static_cast<int32_t>(rng() % dim_rows);
    f_key4[i] = static_cast<int32_t>(rng() % dim_rows);
    f_filter[i] = static_cast<int32_t>(rng() % kFilterDomain);
    f_val[i] = static_cast<int64_t>(rng() % 1000);
    f_price[i] = static_cast<int64_t>(rng() % 10000);
    f_disc[i] = static_cast<int64_t>(rng() % 100);
    f_qty[i] = static_cast<int64_t>(rng() % 50);
    f_cost[i] = static_cast<int64_t>(rng() % 5000);
  }
  for (Relation* dim : {&t.dim1, &t.dim2, &t.dim3, &t.dim4}) {
    auto d_key = dim->AddColumn<int32_t>("d_key", dim_rows);
    auto d_group = dim->AddColumn<int32_t>("d_group", dim_rows);
    auto d_pay = dim->AddColumn<int64_t>("d_pay", dim_rows);
    for (size_t i = 0; i < dim_rows; ++i) {
      d_key[i] = static_cast<int32_t>(i);
      d_group[i] = static_cast<int32_t>(rng() % 64);
      d_pay[i] = static_cast<int64_t>(rng() % 1000);
    }
  }
  return t;
}

/// Q9-shaped pipeline: filter(f_filter < cutoff) -> three dimension joins
/// (carrying a Q9-sized payload through each) -> group by d_group with
/// three aggregate sums.
int64_t RunPipeline(const Tables& t, const ExecContext& ctx,
                    int32_t cutoff) {
  Scan::Shared scan_fact(t.fact.tuple_count());
  Scan::Shared scan_dim1(t.dim1.tuple_count());
  Scan::Shared scan_dim2(t.dim2.tuple_count());
  Scan::Shared scan_dim3(t.dim3.tuple_count());
  Scan::Shared scan_dim4(t.dim4.tuple_count());
  HashJoin::Shared join1_shared(1);
  HashJoin::Shared join2_shared(1);
  HashJoin::Shared join3_shared(1);
  HashJoin::Shared join4_shared(1);
  HashGroup::Shared group_shared(1);

  auto d1scan = std::make_unique<Scan>(&scan_dim1, &t.dim1, ctx.vector_size);
  Slot* d1_key = d1scan->AddColumn<int32_t>("d_key");
  Slot* d1_pay = d1scan->AddColumn<int64_t>("d_pay");

  auto d2scan = std::make_unique<Scan>(&scan_dim2, &t.dim2, ctx.vector_size);
  Slot* d2_key = d2scan->AddColumn<int32_t>("d_key");
  Slot* d2_group = d2scan->AddColumn<int32_t>("d_group");
  Slot* d2_pay = d2scan->AddColumn<int64_t>("d_pay");

  auto d3scan = std::make_unique<Scan>(&scan_dim3, &t.dim3, ctx.vector_size);
  Slot* d3_key = d3scan->AddColumn<int32_t>("d_key");
  Slot* d3_pay = d3scan->AddColumn<int64_t>("d_pay");

  auto d4scan = std::make_unique<Scan>(&scan_dim4, &t.dim4, ctx.vector_size);
  Slot* d4_key = d4scan->AddColumn<int32_t>("d_key");
  Slot* d4_pay = d4scan->AddColumn<int64_t>("d_pay");

  auto fscan = std::make_unique<Scan>(&scan_fact, &t.fact, ctx.vector_size);
  Slot* f_key1 = fscan->AddColumn<int32_t>("f_key1");
  Slot* f_key2 = fscan->AddColumn<int32_t>("f_key2");
  Slot* f_key3 = fscan->AddColumn<int32_t>("f_key3");
  Slot* f_key4 = fscan->AddColumn<int32_t>("f_key4");
  Slot* f_filter = fscan->AddColumn<int32_t>("f_filter");
  Slot* f_val = fscan->AddColumn<int64_t>("f_val");
  Slot* f_price = fscan->AddColumn<int64_t>("f_price");
  Slot* f_disc = fscan->AddColumn<int64_t>("f_disc");
  Slot* f_qty = fscan->AddColumn<int64_t>("f_qty");
  Slot* f_cost = fscan->AddColumn<int64_t>("f_cost");

  auto select = std::make_unique<Select>(std::move(fscan), ctx);
  select->AddStep(MakeSelCmp<int32_t>(ctx, f_filter, CmpOp::kLess, cutoff));
  CompactColumn<int32_t>(ctx, select->compactor(), f_key1);
  CompactColumn<int32_t>(ctx, select->compactor(), f_key2);
  CompactColumn<int32_t>(ctx, select->compactor(), f_key3);
  CompactColumn<int32_t>(ctx, select->compactor(), f_key4);
  CompactColumn<int64_t>(ctx, select->compactor(), f_val);
  CompactColumn<int64_t>(ctx, select->compactor(), f_price);
  CompactColumn<int64_t>(ctx, select->compactor(), f_disc);
  CompactColumn<int64_t>(ctx, select->compactor(), f_qty);
  CompactColumn<int64_t>(ctx, select->compactor(), f_cost);

  auto hj1 = std::make_unique<HashJoin>(&join1_shared, std::move(d1scan),
                                        std::move(select), ctx);
  const size_t f1_key = hj1->AddBuildField<int32_t>(d1_key);
  const size_t f1_pay = hj1->AddBuildField<int64_t>(d1_pay);
  hj1->SetBuildHash(MakeHash<int32_t>(ctx, d1_key));
  hj1->SetProbeHash(MakeHash<int32_t>(ctx, f_key1));
  hj1->AddKeyCompare<int32_t>(f_key1, f1_key);
  Slot* j1_pay = hj1->AddBuildOutput<int64_t>(f1_pay);
  Slot* j1_key2 = hj1->AddProbeOutput<int32_t>(f_key2);
  Slot* j1_key3 = hj1->AddProbeOutput<int32_t>(f_key3);
  Slot* j1_key4 = hj1->AddProbeOutput<int32_t>(f_key4);
  Slot* j1_val = hj1->AddProbeOutput<int64_t>(f_val);
  Slot* j1_price = hj1->AddProbeOutput<int64_t>(f_price);
  Slot* j1_disc = hj1->AddProbeOutput<int64_t>(f_disc);
  Slot* j1_qty = hj1->AddProbeOutput<int64_t>(f_qty);
  Slot* j1_cost = hj1->AddProbeOutput<int64_t>(f_cost);

  auto hj2 = std::make_unique<HashJoin>(&join2_shared, std::move(d2scan),
                                        std::move(hj1), ctx);
  const size_t f2_key = hj2->AddBuildField<int32_t>(d2_key);
  const size_t f2_group = hj2->AddBuildField<int32_t>(d2_group);
  const size_t f2_pay = hj2->AddBuildField<int64_t>(d2_pay);
  hj2->SetBuildHash(MakeHash<int32_t>(ctx, d2_key));
  hj2->SetProbeHash(MakeHash<int32_t>(ctx, j1_key2));
  hj2->AddKeyCompare<int32_t>(j1_key2, f2_key);
  Slot* j2_group = hj2->AddBuildOutput<int32_t>(f2_group);
  Slot* j2_pay = hj2->AddBuildOutput<int64_t>(f2_pay);
  Slot* j2_key3 = hj2->AddProbeOutput<int32_t>(j1_key3);
  Slot* j2_key4 = hj2->AddProbeOutput<int32_t>(j1_key4);
  Slot* j2_pay1 = hj2->AddProbeOutput<int64_t>(j1_pay);
  Slot* j2_val0 = hj2->AddProbeOutput<int64_t>(j1_val);
  Slot* j2_price0 = hj2->AddProbeOutput<int64_t>(j1_price);
  Slot* j2_disc0 = hj2->AddProbeOutput<int64_t>(j1_disc);
  Slot* j2_qty0 = hj2->AddProbeOutput<int64_t>(j1_qty);
  Slot* j2_cost0 = hj2->AddProbeOutput<int64_t>(j1_cost);

  auto hj3 = std::make_unique<HashJoin>(&join3_shared, std::move(d3scan),
                                        std::move(hj2), ctx);
  const size_t f3_key = hj3->AddBuildField<int32_t>(d3_key);
  const size_t f3_pay = hj3->AddBuildField<int64_t>(d3_pay);
  hj3->SetBuildHash(MakeHash<int32_t>(ctx, d3_key));
  hj3->SetProbeHash(MakeHash<int32_t>(ctx, j2_key3));
  hj3->AddKeyCompare<int32_t>(j2_key3, f3_key);
  Slot* j3_pay = hj3->AddBuildOutput<int64_t>(f3_pay);
  Slot* j3_key4 = hj3->AddProbeOutput<int32_t>(j2_key4);
  Slot* j3_group = hj3->AddProbeOutput<int32_t>(j2_group);
  Slot* j3_pay2 = hj3->AddProbeOutput<int64_t>(j2_pay);
  Slot* j3_pay1 = hj3->AddProbeOutput<int64_t>(j2_pay1);
  Slot* j3_val = hj3->AddProbeOutput<int64_t>(j2_val0);
  Slot* j3_price = hj3->AddProbeOutput<int64_t>(j2_price0);
  Slot* j3_disc = hj3->AddProbeOutput<int64_t>(j2_disc0);
  Slot* j3_qty = hj3->AddProbeOutput<int64_t>(j2_qty0);
  Slot* j3_cost = hj3->AddProbeOutput<int64_t>(j2_cost0);

  auto hj4 = std::make_unique<HashJoin>(&join4_shared, std::move(d4scan),
                                        std::move(hj3), ctx);
  const size_t f4_key = hj4->AddBuildField<int32_t>(d4_key);
  const size_t f4_pay = hj4->AddBuildField<int64_t>(d4_pay);
  hj4->SetBuildHash(MakeHash<int32_t>(ctx, d4_key));
  hj4->SetProbeHash(MakeHash<int32_t>(ctx, j3_key4));
  hj4->AddKeyCompare<int32_t>(j3_key4, f4_key);
  Slot* j4_pay = hj4->AddBuildOutput<int64_t>(f4_pay);
  Slot* j4_pay3 = hj4->AddProbeOutput<int64_t>(j3_pay);
  Slot* j4_group = hj4->AddProbeOutput<int32_t>(j3_group);
  Slot* j4_pay2 = hj4->AddProbeOutput<int64_t>(j3_pay2);
  Slot* j4_pay1 = hj4->AddProbeOutput<int64_t>(j3_pay1);
  Slot* j4_val = hj4->AddProbeOutput<int64_t>(j3_val);
  Slot* j4_price = hj4->AddProbeOutput<int64_t>(j3_price);
  Slot* j4_disc = hj4->AddProbeOutput<int64_t>(j3_disc);
  Slot* j4_qty = hj4->AddProbeOutput<int64_t>(j3_qty);
  Slot* j4_cost = hj4->AddProbeOutput<int64_t>(j3_cost);

  auto map = std::make_unique<Map>(std::move(hj4), ctx.vector_size);
  Slot* product = map->AddOutput<int64_t>();
  Slot* amount = map->AddOutput<int64_t>();
  Slot* revenue = map->AddOutput<int64_t>();
  map->AddStep(MakeMapMul<int64_t>(j4_val, j4_pay1,
                                   map->OutputData<int64_t>(product)));
  map->AddStep(MakeMapAddConst<int64_t>(0, j4_pay2,
                                        map->OutputData<int64_t>(amount)));
  map->AddStep(
      MakeMapMul<int64_t>(product, amount, map->OutputData<int64_t>(amount)));
  map->AddStep(MakeMapRSubConst<int64_t>(100, j4_disc,
                                         map->OutputData<int64_t>(revenue)));
  map->AddStep(MakeMapMul<int64_t>(j4_price, revenue,
                                   map->OutputData<int64_t>(revenue)));
  map->AddStep(MakeMapMul<int64_t>(revenue, j4_pay3,
                                   map->OutputData<int64_t>(revenue)));
  map->AddStep(MakeMapMul<int64_t>(revenue, j4_pay,
                                   map->OutputData<int64_t>(revenue)));
  Slot* supply = map->AddOutput<int64_t>();
  map->AddStep(MakeMapMul<int64_t>(j4_cost, j4_qty,
                                   map->OutputData<int64_t>(supply)));
  map->AddStep(MakeMapSub<int64_t>(revenue, supply,
                                   map->OutputData<int64_t>(supply)));

  auto group = std::make_unique<HashGroup>(&group_shared, 0, 1,
                                           std::move(map), ctx);
  const size_t k_group = group->AddKey<int32_t>(j4_group);
  const size_t a_sum = group->AddSumAgg(amount);
  const size_t a_rev = group->AddSumAgg(revenue);
  const size_t a_val = group->AddSumAgg(j4_val);
  const size_t a_supply = group->AddSumAgg(supply);
  const size_t a_qty = group->AddSumAgg(j4_qty);
  Slot* g_group = group->AddOutput<int32_t>(k_group);
  Slot* g_sum = group->AddOutput<int64_t>(a_sum);
  Slot* g_rev = group->AddOutput<int64_t>(a_rev);
  Slot* g_val = group->AddOutput<int64_t>(a_val);
  Slot* g_supply = group->AddOutput<int64_t>(a_supply);
  Slot* g_qty = group->AddOutput<int64_t>(a_qty);
  (void)g_group;

  int64_t total = 0;
  size_t n;
  while ((n = group->Next()) != kEndOfStream) {
    for (size_t k = 0; k < n; ++k) {
      total += Get<int64_t>(g_sum)[k] + Get<int64_t>(g_rev)[k] +
               Get<int64_t>(g_val)[k] + Get<int64_t>(g_supply)[k] +
               Get<int64_t>(g_qty)[k];
    }
  }
  return total;
}

const char* PolicyName(CompactionPolicy policy) {
  switch (policy) {
    case CompactionPolicy::kNever: return "never";
    case CompactionPolicy::kAlways: return "always";
    case CompactionPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

}  // namespace

int main() {
  const int reps = benchutil::EnvReps(11);
  // Out-of-cache fact table (paper Fig. 7 conditions); small cache-resident
  // dimensions so the per-run fixed build cost stays off the sweep floor.
  size_t fact_rows = static_cast<size_t>(EnvInt("VCQ_ROWS", 1 << 23));
  if (benchutil::Quick()) fact_rows = 1u << 18;
  const size_t dim_rows =
      static_cast<size_t>(EnvInt("VCQ_DIM_ROWS", 1 << 11));
  const size_t vector_size = 1024;
  const double threshold = EnvDouble("VCQ_COMPACT_THRESHOLD", 1.0 / 64);

  benchutil::PrintHeader(
      "Ablation: adaptive batch compaction (filter -> join -> aggregate)",
      "sparse selection vectors degrade vectorized primitives (Sec. 5.1, "
      "Fig. 7); chunk compaction densifies them (SIGMOD'25)",
      "fact=" + std::to_string(fact_rows) + " rows, dim=" +
          std::to_string(dim_rows) + " rows, vector=1024, threshold=" +
          benchutil::Fmt(threshold, 3) + ", 1 thread, " +
          std::to_string(reps) + " reps (policies interleaved per rep)");

  const Tables tables = MakeTables(fact_rows, dim_rows);
  const double selectivities[] = {100, 50, 25, 10, 5, 2, 1, 0.5, 0.25};
  constexpr size_t kPolicies = 3;
  const CompactionPolicy policies[kPolicies] = {CompactionPolicy::kNever,
                                                CompactionPolicy::kAlways,
                                                CompactionPolicy::kAdaptive};

  benchutil::Table table({"sel %", "policy", "ms", "vs never", "density",
                          "compactions"});
  bool results_agree = true;
  auto& telemetry = CompactionTelemetry::Global();
  for (const double sel_pct : selectivities) {
    const int32_t cutoff =
        static_cast<int32_t>(sel_pct / 100.0 * kFilterDomain);
    ExecContext ctxs[kPolicies];
    std::vector<double> times[kPolicies];
    int64_t totals[kPolicies] = {0, 0, 0};
    CompactionTelemetry::Snapshot stats[kPolicies];
    for (size_t p = 0; p < kPolicies; ++p) {
      ctxs[p].vector_size = vector_size;
      ctxs[p].use_simd = simd::Available();
      ctxs[p].compaction = policies[p];
      ctxs[p].compaction_threshold = threshold;
    }
    // Policies are interleaved within each rep so slow clock drift (single
    // shared core) biases all three equally; the median is taken per
    // policy across reps. Rep -1 warms page cache and allocators.
    for (int rep = -1; rep < reps; ++rep) {
      for (size_t p = 0; p < kPolicies; ++p) {
        telemetry.Reset();
        const auto start = std::chrono::steady_clock::now();
        totals[p] = RunPipeline(tables, ctxs[p], cutoff);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (rep < 0) continue;
        times[p].push_back(ms);
        stats[p] = telemetry.Take();
      }
    }
    for (size_t p = 0; p < kPolicies; ++p) {
      // "vs never" is the median of the PER-REP ratios: measurements of
      // one rep run back to back and share the machine's drift state, so
      // the paired ratio is far more stable than a ratio of medians.
      std::vector<double> ratios;
      for (size_t r = 0; r < times[p].size(); ++r)
        ratios.push_back(times[0][r] / times[p][r]);
      std::sort(ratios.begin(), ratios.end());
      const double speedup = ratios[ratios.size() / 2];
      std::vector<double> sorted = times[p];
      std::sort(sorted.begin(), sorted.end());
      const double ms = sorted[sorted.size() / 2];
      if (totals[p] != totals[0]) results_agree = false;
      table.AddRow({benchutil::Fmt(sel_pct, 1), PolicyName(policies[p]),
                    benchutil::Fmt(ms, 2), benchutil::Fmt(speedup, 2) + "x",
                    benchutil::FmtCounter(stats[p].AvgDensity(), 3),
                    benchutil::Fmt(static_cast<double>(stats[p].compactions),
                                   0)});
      // Machine-readable line for BENCH_*.json trajectories.
      std::printf(
          "JSON {\"bench\":\"ablation_compaction\",\"sel_pct\":%g,"
          "\"policy\":\"%s\",\"ms\":%.3f,\"speedup_vs_never\":%.3f,"
          "\"avg_density\":%.4f,\"compactions\":%llu}\n",
          sel_pct, PolicyName(policies[p]), ms, speedup,
          stats[p].AvgDensity(),
          static_cast<unsigned long long>(stats[p].compactions));
    }
  }
  table.Print();
  std::printf(
      "\nresults %s across policies\n"
      "paper shape: at low selectivity the adaptive policy merges sparse "
      "batches into full vectors, so the join and aggregate amortize their "
      "per-vector overhead again; at high selectivity it must match kNever "
      "(pass-through) while kAlways pays for useless copies.\n",
      results_agree ? "IDENTICAL" : "DIFFER (BUG!)");
  return results_agree ? 0 : 1;
}
