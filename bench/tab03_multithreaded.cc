// Table 3: morsel-driven multi-threaded execution. Paper: SF=100 on a
// 10-core/20-hyper-thread Skylake; near-linear speedups for Q1/Q3/Q9, Q6
// bandwidth-bound, and the Typer-vs-TW ratio moving toward 1 at high
// thread counts (SMT hides microarchitectural differences).

#include <cstdio>
#include <thread>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(2.0);
  const int reps = benchutil::EnvReps(2);
  const size_t hw = benchutil::EnvThreads(0);
  std::vector<size_t> thread_counts = {1, std::max<size_t>(2, hw / 2), hw};
  if (benchutil::Quick()) thread_counts = {1, 2};

  benchutil::PrintHeader(
      "Table 3: multi-threaded TPC-H (morsel-driven parallelism)",
      "SF=100, 1/10/20 threads on 10-core SMT-2 Skylake",
      "SF=" + benchutil::Fmt(sf, 2) + " (RAM-sized; paper's SF=100 needs "
                                      ">100 GB), threads up to " +
          std::to_string(hw));

  runtime::Database db = datagen::GenerateTpch(sf);

  benchutil::Table table({"query", "thr", "Typer ms", "Ty build", "Ty probe",
                          "Typer spdup", "TW ms", "TW build", "TW probe",
                          "TW spdup", "Ratio"});
  for (Query q : TpchQueries()) {
    double typer_base = 0, tw_base = 0;
    for (const size_t t : thread_counts) {
      runtime::QueryOptions opt;
      opt.threads = t;
      const auto typer =
          benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
      const auto tw =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
      if (t == thread_counts.front()) {
        typer_base = typer.ms;
        tw_base = tw.ms;
      }
      table.AddRow({QueryName(q), std::to_string(t),
                    benchutil::Fmt(typer.ms, 1),
                    benchutil::Fmt(typer.build_ms, 1),
                    benchutil::Fmt(typer.probe_ms, 1),
                    benchutil::Fmt(typer_base / typer.ms, 1),
                    benchutil::Fmt(tw.ms, 1),
                    benchutil::Fmt(tw.build_ms, 1),
                    benchutil::Fmt(tw.probe_ms, 1),
                    benchutil::Fmt(tw_base / tw.ms, 1),
                    benchutil::Fmt(typer.ms / tw.ms, 2)});
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: both engines scale near-linearly on physical cores "
      "(Q6/Q18 bandwidth-limited), and the performance gap between engines "
      "shrinks when all hardware threads are used.\n");
  return 0;
}
