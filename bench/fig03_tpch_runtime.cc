// Figure 3: single-threaded TPC-H runtimes, Typer vs Tectorwise.
// Paper: SF=1, 1 thread, Skylake X. Expected shape: Typer faster on Q1
// (computation-bound) and Q18, Tectorwise faster on the join-dominated Q3
// and Q9, Q6 close.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(3);
  benchutil::PrintHeader(
      "Figure 3: TPC-H runtimes, 1 thread (Typer vs Tectorwise)",
      "SF=1, 1 thread, i9-7900X",
      "SF=" + benchutil::Fmt(sf, 2) + ", 1 thread, " +
          std::to_string(reps) + " reps (median)");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  benchutil::Table table({"query", "Typer ms", "Tectorwise ms", "TW/Typer"});
  for (Query q : TpchQueries()) {
    const auto typer =
        benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
    const auto tw =
        benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
    table.AddRow({QueryName(q), benchutil::Fmt(typer.ms, 2),
                  benchutil::Fmt(tw.ms, 2),
                  benchutil::Fmt(tw.ms / typer.ms, 2)});
  }
  table.Print();
  std::printf(
      "\npaper shape: Typer wins Q1 (~1.7x) and Q18; TW wins Q3/Q9 "
      "(joins); both close on Q6.\n");
  return 0;
}
