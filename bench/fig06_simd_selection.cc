// Figure 6: scalar vs SIMD selection in Tectorwise.
//  (a) dense input, 8192 int32 values, 40% selectivity  (paper: 8.4x)
//  (b) sparse input: selection vector selects 40%, then select 40%
//      (paper: 2.7x)
//  (c) full TPC-H Q6 scalar vs SIMD primitives          (paper: 1.4x)

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

namespace {

using namespace vcq;
using tectorwise::pos_t;

constexpr size_t kN = 8192;

struct MicroData {
  std::vector<int32_t> col;
  std::vector<pos_t> sel40;  // 40% input selection vector
  std::vector<pos_t> out;

  MicroData() : col(kN), out(kN) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<int32_t> dist(0, 99);
    for (auto& x : col) x = dist(rng);
    std::bernoulli_distribution pick(0.4);
    for (size_t p = 0; p < kN; ++p)
      if (pick(rng)) sel40.push_back(static_cast<pos_t>(p));
  }
};

MicroData& Data() {
  static MicroData data;
  return data;
}

void BM_DenseScalar(benchmark::State& state) {
  MicroData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::SelDense<int32_t,
                                                  tectorwise::CmpLess>(
        kN, d.col.data(), 40, d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DenseScalar);

void BM_DenseSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  MicroData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tectorwise::simd::SelLessI32Dense(kN, d.col.data(), 40,
                                          d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_DenseSimd);

void BM_SparseScalar(benchmark::State& state) {
  MicroData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::SelSparse<int32_t,
                                                   tectorwise::CmpLess>(
        d.sel40.size(), d.sel40.data(), d.col.data(), 40, d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * d.sel40.size());
}
BENCHMARK(BM_SparseScalar);

void BM_SparseSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  MicroData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::simd::SelLessI32Sparse(
        d.sel40.size(), d.sel40.data(), d.col.data(), 40, d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * d.sel40.size());
}
BENCHMARK(BM_SparseSimd);

const runtime::Database& Db() {
  static const runtime::Database* db =
      new runtime::Database(datagen::GenerateTpch(benchutil::EnvSf(1.0)));
  return *db;
}

void BM_Q6Scalar(benchmark::State& state) {
  const runtime::Database& db = Db();
  runtime::QueryOptions opt;
  for (auto _ : state) RunQuery(db, Engine::kTectorwise, Query::kQ6, opt);
}
BENCHMARK(BM_Q6Scalar)->Unit(benchmark::kMillisecond);

void BM_Q6Simd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  const runtime::Database& db = Db();
  runtime::QueryOptions opt;
  opt.simd = true;
  for (auto _ : state) RunQuery(db, Engine::kTectorwise, Query::kQ6, opt);
}
BENCHMARK(BM_Q6Simd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vcq::benchutil::PrintHeader(
      "Figure 6: scalar vs SIMD selection",
      "(a) dense 8.4x  (b) sparse/sel-vector 2.7x  (c) TPC-H Q6 1.4x",
      "compare items_per_second of the Scalar/Simd benchmark pairs");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
