// Figure 7: sparse selection on an out-of-cache working set — cost per
// element as a function of the *input* selectivity (output selectivity
// fixed at 40%). Paper: 4 GB data set; once the memory subsystem dominates
// (input selectivity below ~100%), the SIMD advantage disappears.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "common/env_util.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

namespace {

using namespace vcq;
using tectorwise::pos_t;

struct SweepData {
  std::vector<int32_t> col;
  std::vector<std::vector<pos_t>> sels;  // index = selectivity / 10
  std::vector<pos_t> out;

  explicit SweepData(size_t n) : col(n), out(n) {
    std::mt19937_64 rng(11);
    for (auto& x : col) x = static_cast<int32_t>(rng() % 100);
    sels.resize(11);
    for (int pct = 10; pct <= 100; pct += 10) {
      auto& sel = sels[pct / 10];
      sel.reserve(n * pct / 100);
      std::bernoulli_distribution pick(pct / 100.0);
      for (size_t p = 0; p < n; ++p)
        if (pick(rng)) sel.push_back(static_cast<pos_t>(p));
    }
  }
};

SweepData& Data() {
  // Paper uses 4 GB; default here is 256 MB of values (container-sized),
  // overridable via VCQ_BYTES.
  static SweepData* data = [] {
    size_t bytes = static_cast<size_t>(EnvInt("VCQ_BYTES", 256 << 20));
    if (benchutil::Quick()) bytes = 16 << 20;
    return new SweepData(bytes / sizeof(int32_t));
  }();
  return *data;
}

void BM_SparseScalar(benchmark::State& state) {
  SweepData& d = Data();
  const auto& sel = d.sels[state.range(0) / 10];
  for (auto _ : state) {
    // Output selectivity 40%: values uniform in [0,100), threshold 40.
    benchmark::DoNotOptimize(tectorwise::SelSparse<int32_t,
                                                   tectorwise::CmpLess>(
        sel.size(), sel.data(), d.col.data(), 40, d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * sel.size());
  state.counters["input_sel_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SparseScalar)->DenseRange(10, 100, 10)
    ->Unit(benchmark::kMillisecond);

void BM_SparseSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  SweepData& d = Data();
  const auto& sel = d.sels[state.range(0) / 10];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::simd::SelLessI32Sparse(
        sel.size(), sel.data(), d.col.data(), 40, d.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * sel.size());
  state.counters["input_sel_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SparseSimd)->DenseRange(10, 100, 10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vcq::benchutil::PrintHeader(
      "Figure 7: sparse selection vs input selectivity (out-of-cache)",
      "4 GB working set; scalar == SIMD below ~50% input selectivity",
      "VCQ_BYTES working set (default 256 MB); compare per-item rates");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
