// Ablation: the join build/probe memory path (ISSUE 3). Axes:
//   * build protocol — the seed's global CAS pass vs the partition-parallel
//     build (runtime::JoinBuild, BuildMode): disjoint bucket ranges, plain
//     stores, contiguous bucket-ordered entry arena;
//   * chain layout — CAS leaves entries scattered across worker MemPool
//     chunks (pointer-chasing chains), the partitioned build relinks them
//     into sequential arena runs;
//   * probe staging — findCandidates vs the prefetch-staged
//     JoinCandidatesStaged (relaxed operator fusion, paper §9.1);
// swept over build-side cardinality (Fig. 9-style working-set axis). The
// paper's Tab. 1/Fig. 4 finding is that exactly this path dominates the
// join queries once the table leaves the caches.

#include <cstddef>
#include <cstdio>
#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "runtime/worker_pool.h"
#include "tectorwise/primitives.h"

namespace {

using namespace vcq;
using runtime::BuildMode;
using runtime::EntryChunkList;
using runtime::Hashmap;
using runtime::JoinBuild;
using tectorwise::pos_t;

constexpr size_t kBatch = 4096;

struct Entry {
  Hashmap::EntryHeader header;
  int64_t key;
  int64_t payload;
};

/// Build-side rows pre-materialized into per-worker chunk lists, so the
/// measured region is exactly the insert protocol (what JoinBuild::Run
/// does), not the materialize phase.
struct BuildInput {
  explicit BuildInput(size_t entries, size_t workers) : lists(workers) {
    constexpr size_t kChunkRows = 1024;
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * entries / workers;
      const size_t end = (w + 1) * entries / workers;
      for (size_t at = begin; at < end; at += kChunkRows) {
        const size_t rows = std::min(kChunkRows, end - at);
        auto* block =
            static_cast<Entry*>(pool.Allocate(rows * sizeof(Entry)));
        for (size_t k = 0; k < rows; ++k) {
          const auto key = static_cast<int64_t>(at + k);
          block[k].header.next = nullptr;
          block[k].header.hash =
              runtime::HashMurmur2(static_cast<uint64_t>(key));
          block[k].key = key;
          block[k].payload = key * 3;
        }
        lists[w].Add(reinterpret_cast<std::byte*>(block), rows);
      }
    }
  }

  /// All rows as a single worker's chunk list (single-threaded builds).
  EntryChunkList Merged() const {
    EntryChunkList all;
    for (const EntryChunkList& list : lists) {
      for (const auto& [base, rows] : list.chunks) all.Add(base, rows);
    }
    return all;
  }

  runtime::MemPool pool;
  std::vector<EntryChunkList> lists;
};

double MeasureBuild(const BuildInput& input, BuildMode mode, size_t threads,
                    int reps) {
  return benchutil::Measure(
             [&] {
               Hashmap ht;
               JoinBuild build(&ht, threads);
               runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
                 EntryChunkList chunks = threads == 1
                                             ? input.Merged()
                                             : input.lists[wid];
                 build.Run(mode, std::move(chunks), sizeof(Entry));
               });
             },
             reps)
      .ms;
}

/// One built table (either protocol) plus the probe working set.
struct Probe {
  Probe(const BuildInput& input, BuildMode mode, size_t entries)
      : build(&ht, 1), hashes(kBatch), pos(kBatch), keys(kBatch),
        cand(kBatch), cand_pos(kBatch), match(kBatch), hits(kBatch),
        hit_pos(kBatch) {
    build.Run(mode, input.Merged(), sizeof(Entry));
    rng.seed(42 + entries);
    range = 2 * entries;  // ~50% hit rate
  }

  /// Hashes one fresh batch and resolves it through the full candidate /
  /// compare / advance loop; returns the hit count (kept live).
  size_t Batch(bool staged) {
    for (size_t k = 0; k < kBatch; ++k) {
      keys[k] = static_cast<int64_t>(rng() % range);
      hashes[k] = runtime::HashMurmur2(static_cast<uint64_t>(keys[k]));
      pos[k] = static_cast<pos_t>(k);
    }
    size_t m = staged
                   ? tectorwise::JoinCandidatesStaged(
                         kBatch, hashes.data(), pos.data(), ht, cand.data(),
                         cand_pos.data())
                   : tectorwise::JoinCandidates(kBatch, hashes.data(),
                                                pos.data(), ht, cand.data(),
                                                cand_pos.data());
    size_t hit_count = 0;
    while (m > 0) {
      tectorwise::CmpEntryKeyInit<int64_t>(m, cand.data(), cand_pos.data(),
                                           keys.data(),
                                           offsetof(Entry, key),
                                           match.data());
      m = tectorwise::ExtractHitsAdvance(m, cand.data(), cand_pos.data(),
                                         match.data(), hits.data(),
                                         hit_pos.data(), hit_count);
    }
    return hit_count;
  }

  Hashmap ht;
  JoinBuild build;
  std::mt19937_64 rng;
  uint64_t range = 1;
  std::vector<uint64_t> hashes;
  std::vector<pos_t> pos;
  std::vector<int64_t> keys;
  std::vector<Hashmap::EntryHeader*> cand;
  std::vector<pos_t> cand_pos;
  std::vector<uint8_t> match;
  std::vector<Hashmap::EntryHeader*> hits;
  std::vector<pos_t> hit_pos;
};

double MeasureProbe(Probe& probe, bool staged, size_t batches, int reps) {
  volatile size_t sink = 0;
  return benchutil::Measure(
             [&] {
               size_t total = 0;
               for (size_t b = 0; b < batches; ++b)
                 total += probe.Batch(staged);
               sink = total;
             },
             reps)
      .ms;
}

}  // namespace

int main() {
  const int reps = benchutil::EnvReps(3);
  const size_t threads = benchutil::EnvThreads(0);
  benchutil::PrintHeader(
      "Ablation: partition-parallel build + prefetch-staged probes",
      "join queries are bound by the hash-table memory path (Tab. 1, "
      "Fig. 4); ROF prefetching hides it (Sec. 9.1)",
      "threads=" + std::to_string(threads) +
          "; CAS=global lock-free inserts (scattered chains), "
          "part=bucket-range inserts (contiguous arena chains)");

  std::vector<size_t> entry_counts = {1 << 14, 1 << 16, 1 << 18, 1 << 20,
                                      1 << 22};
  if (benchutil::Quick()) entry_counts = {1 << 12, 1 << 14};

  benchutil::Table table({"entries", "ws_MB", "cas b1 ms", "part b1 ms",
                          "cas bT ms", "part bT ms", "bT spdup",
                          "probe cas ms", "probe part ms", "part+stage ms",
                          "stage spdup"});
  for (const size_t entries : entry_counts) {
    BuildInput input(entries, threads);

    const double cas1 = MeasureBuild(input, BuildMode::kCas, 1, reps);
    const double part1 =
        MeasureBuild(input, BuildMode::kPartitioned, 1, reps);
    const double cas_t = MeasureBuild(input, BuildMode::kCas, threads, reps);
    const double part_t =
        MeasureBuild(input, BuildMode::kPartitioned, threads, reps);

    Probe cas_probe(input, BuildMode::kCas, entries);
    Probe part_probe(input, BuildMode::kPartitioned, entries);
    const size_t batches = std::max<size_t>(1, entries / kBatch) * 4;
    const double p_cas = MeasureProbe(cas_probe, false, batches, reps);
    const double p_part = MeasureProbe(part_probe, false, batches, reps);
    const double p_staged = MeasureProbe(part_probe, true, batches, reps);

    const double ws_mb =
        static_cast<double>(cas_probe.ht.capacity() * sizeof(void*) +
                            entries * sizeof(Entry)) /
        (1 << 20);
    table.AddRow({std::to_string(entries), benchutil::Fmt(ws_mb, 1),
                  benchutil::Fmt(cas1, 2), benchutil::Fmt(part1, 2),
                  benchutil::Fmt(cas_t, 2), benchutil::Fmt(part_t, 2),
                  benchutil::Fmt(cas_t / part_t, 2),
                  benchutil::Fmt(p_cas, 2), benchutil::Fmt(p_part, 2),
                  benchutil::Fmt(p_staged, 2),
                  benchutil::Fmt(p_part / p_staged, 2)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: with several threads the partitioned build pulls "
      "ahead of CAS (no bucket contention), contiguous arena chains probe "
      "faster than scattered MemPool chains, and staged probes win once "
      "the working set exceeds the LLC (prefetches hide the two dependent "
      "misses per lookup).\n");
  return 0;
}
