// Ablation: what the query scheduler buys (gang scheduling over a fixed
// worker set, weighted fair queueing, admission control). Extends
// ablation_session_reuse's mixed-stream mode with the serving-layer
// questions it left open:
//
//  1. bounded gang workers: a mixed stream with 8 executions in flight on
//     schedulers of different fixed capacities. The pre-scheduler pool
//     grew its thread set to peak concurrent demand (here up to
//     8 x threads workers); the scheduler holds the configured bound with
//     the same results.
//
//  2. fairness / tail latency: a latency-sensitive session (Q6) sharing
//     the scheduler with an analytical session that keeps big queries
//     (Q9/Q18) in flight. Under FIFO the short query's regions queue
//     behind the analytical backlog; under weighted fair queueing (short
//     session weight 4) its p99 drops while the analytical stream keeps
//     running. Reports per-session throughput and short-query latency
//     percentiles for both policies.
//
//  3. weight proportion: two sessions running the same query at weights
//     3:1 on a saturated scheduler — region dispatches (and completed
//     executions) should track the weights.
//
// Env: VCQ_SF (default 0.3; VCQ_QUICK=1 shrinks to 0.05), VCQ_REPS.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/scheduler.h"
#include "runtime/worker_pool.h"

namespace {

using namespace vcq;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

struct StreamItem {
  Engine engine;
  Query query;
};

std::vector<StreamItem> MakeStream(size_t length) {
  std::vector<StreamItem> mix;
  for (Query q : TpchQueries()) {
    mix.push_back({Engine::kTyper, q});
    mix.push_back({Engine::kTectorwise, q});
  }
  std::vector<StreamItem> stream;
  for (size_t i = 0; i < length; ++i) stream.push_back(mix[i % mix.size()]);
  return stream;
}

/// Drives `prepared` round-robin with `inflight` concurrent executions.
double RunInFlight(std::vector<PreparedQuery>& prepared, size_t executions,
                   size_t inflight) {
  const auto start = Clock::now();
  std::deque<ExecutionHandle> handles;
  for (size_t i = 0; i < executions; ++i) {
    if (handles.size() == inflight) {
      handles.front().Wait();
      handles.pop_front();
    }
    handles.push_back(prepared[i % prepared.size()].ExecuteAsync());
  }
  while (!handles.empty()) {
    handles.front().Wait();
    handles.pop_front();
  }
  return MsSince(start);
}

struct FairnessResult {
  size_t short_count = 0;
  size_t long_count = 0;
  double short_p50 = 0;
  double short_p99 = 0;
};

/// A latency-sensitive Q6 client and an analytical client (Q9/Q18, two in
/// flight) sharing one scheduler for `window_ms`.
FairnessResult RunMixedWindow(const runtime::Database& db,
                              runtime::SchedPolicy policy,
                              double short_weight, double window_ms) {
  // Capacity 1 keeps a genuine region backlog in front of the scheduler
  // (2-wide regions use the caller plus the single worker, one region at a
  // time) — the queueing regime where dispatch order is what decides tail
  // latency.
  runtime::WorkerPool pool(1);
  pool.scheduler().SetPolicy(policy);
  Session short_session(db, pool);
  Session long_session(db, pool);
  short_session.SetWeight(short_weight);

  runtime::QueryOptions opt;
  opt.threads = 2;
  PreparedQuery q6 = short_session.Prepare(Engine::kTyper, Query::kQ6, opt);
  // Q9 on both engines: long, scan-dominated regions with no serial gaps,
  // so the analytical stream keeps the region queue genuinely backlogged.
  std::vector<PreparedQuery> analytical;
  analytical.push_back(
      long_session.Prepare(Engine::kTectorwise, Query::kQ9, opt));
  analytical.push_back(long_session.Prepare(Engine::kTyper, Query::kQ9, opt));

  FairnessResult result;
  std::vector<double> latencies;
  std::atomic<bool> stop{false};

  std::thread long_client([&] {
    std::deque<ExecutionHandle> handles;
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      while (handles.size() < 4) {
        handles.push_back(analytical[i++ % analytical.size()].ExecuteAsync());
      }
      handles.front().Wait();
      handles.pop_front();
      ++result.long_count;
    }
    while (!handles.empty()) {
      handles.front().Wait();
      handles.pop_front();
    }
  });

  const auto start = Clock::now();
  while (MsSince(start) < window_ms) {
    const auto begin = Clock::now();
    q6.Execute();
    latencies.push_back(MsSince(begin));
    ++result.short_count;
  }
  stop.store(true, std::memory_order_relaxed);
  long_client.join();

  result.short_p50 = Percentile(latencies, 0.50);
  result.short_p99 = Percentile(latencies, 0.99);
  return result;
}

}  // namespace

int main() {
  const bool quick = benchutil::Quick();
  const double sf = benchutil::EnvSf(quick ? 0.05 : 0.3);
  benchutil::PrintHeader(
      "Ablation: query scheduler (gang scheduling, fairness, admission)",
      "fixed worker set + per-session WFQ vs the grow-to-demand FIFO pool",
      "SF=" + benchutil::Fmt(sf, 2));

  runtime::Database db = datagen::GenerateTpch(sf);

  // --- 1. bounded gang workers over a mixed in-flight stream ------------
  const size_t executions = quick ? 24 : 60;
  std::printf("\n-- mixed stream, %zu executions, 8 in flight --\n",
              executions);
  benchutil::Table bounded({"scheduler threads", "spawned workers", "ms",
                            "QPS"});
  for (const size_t cap : {size_t{2}, size_t{4}}) {
    runtime::WorkerPool pool(cap);
    Session session(db, pool);
    runtime::QueryOptions opt;
    opt.threads = 2;
    std::vector<PreparedQuery> prepared;
    for (Query q : TpchQueries()) {
      prepared.push_back(session.Prepare(Engine::kTyper, q, opt));
      prepared.push_back(session.Prepare(Engine::kTectorwise, q, opt));
    }
    const double ms = RunInFlight(prepared, executions, 8);
    bounded.AddRow(
        {std::to_string(cap), std::to_string(pool.spawned_threads()),
         benchutil::Fmt(ms, 1),
         benchutil::Fmt(1000.0 * static_cast<double>(executions) / ms, 1)});
  }
  bounded.Print();
  std::printf(
      "paper shape: the worker count is a configuration, not a function of "
      "load — the pre-scheduler pool spawned up to in-flight x threads "
      "(16 here) to keep barriers deadlock-free; gang admission holds the "
      "bound instead.\n");

  // --- 2. FIFO vs weighted fairness under an analytical backlog ---------
  const double window_ms = quick ? 1200 : 4000;
  std::printf("\n-- short Q6 client vs analytical backlog, %.1fs window --\n",
              window_ms / 1000.0);
  benchutil::Table fair({"policy", "short wgt", "Q6 execs", "Q6 p50 ms",
                         "Q6 p99 ms", "analytical execs"});
  const FairnessResult fifo =
      RunMixedWindow(db, runtime::SchedPolicy::kFifo, 1.0, window_ms);
  const FairnessResult wfq =
      RunMixedWindow(db, runtime::SchedPolicy::kWeightedFair, 4.0, window_ms);
  fair.AddRow({"fifo", "1", std::to_string(fifo.short_count),
               benchutil::Fmt(fifo.short_p50, 2),
               benchutil::Fmt(fifo.short_p99, 2),
               std::to_string(fifo.long_count)});
  fair.AddRow({"weighted-fair", "4", std::to_string(wfq.short_count),
               benchutil::Fmt(wfq.short_p50, 2),
               benchutil::Fmt(wfq.short_p99, 2),
               std::to_string(wfq.long_count)});
  fair.Print();
  std::printf(
      "paper shape: FIFO lets a long query's regions delay a short one's "
      "(ROADMAP's mixed-stream tail-latency item); weighted fair queueing "
      "dispatches the short session's regions ahead of the backlog, cutting "
      "Q6 p99 without starving the analytical stream.\n");

  // --- 3. weight-proportional region dispatch ---------------------------
  std::printf("\n-- weight proportion, two identical Q6 sessions, 3:1 --\n");
  {
    runtime::WorkerPool pool(1);  // saturated: every dispatch is a choice
    Session a(db, pool);
    Session b(db, pool);
    a.SetWeight(3.0);
    runtime::QueryOptions opt;
    opt.threads = 2;
    PreparedQuery qa = a.Prepare(Engine::kTyper, Query::kQ6, opt);
    PreparedQuery qb = b.Prepare(Engine::kTyper, Query::kQ6, opt);
    std::atomic<bool> stop{false};
    std::atomic<size_t> count_a{0}, count_b{0};
    std::thread ta([&] {
      std::deque<ExecutionHandle> h;
      while (!stop.load()) {
        while (h.size() < 3) h.push_back(qa.ExecuteAsync());
        h.front().Wait();
        h.pop_front();
        count_a.fetch_add(1);
      }
      while (!h.empty()) { h.front().Wait(); h.pop_front(); }
    });
    std::thread tb([&] {
      std::deque<ExecutionHandle> h;
      while (!stop.load()) {
        while (h.size() < 3) h.push_back(qb.ExecuteAsync());
        h.front().Wait();
        h.pop_front();
        count_b.fetch_add(1);
      }
      while (!h.empty()) { h.front().Wait(); h.pop_front(); }
    });
    std::this_thread::sleep_for(
        std::chrono::milliseconds(quick ? 800 : 2500));
    stop.store(true);
    ta.join();
    tb.join();
    const uint64_t regions_a = pool.scheduler().regions_dispatched(a.stream());
    const uint64_t regions_b = pool.scheduler().regions_dispatched(b.stream());
    benchutil::Table prop({"session", "weight", "executions", "regions",
                           "region share"});
    const double total =
        static_cast<double>(regions_a + regions_b) / 100.0;
    prop.AddRow({"A", "3", std::to_string(count_a.load()),
                 std::to_string(regions_a),
                 benchutil::Fmt(static_cast<double>(regions_a) / total, 1) +
                     "%"});
    prop.AddRow({"B", "1", std::to_string(count_b.load()),
                 std::to_string(regions_b),
                 benchutil::Fmt(static_cast<double>(regions_b) / total, 1) +
                     "%"});
    prop.Print();
    std::printf(
        "paper shape: with both streams backlogged, region dispatches track "
        "the 3:1 weights (stride scheduling over per-session passes).\n");
  }
  return 0;
}
