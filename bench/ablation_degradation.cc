// Ablation: degrade, don't die (PR 8). A mixed workload — light scans
// through four-build join stacks, both engines — run under a per-query
// memory budget that shrinks from half of the heaviest query's measured
// peak down to an eighth, in three failure-handling modes:
//
//   fail-only   the PR 6 behavior: the ledger soft-trips the budget and
//               the query dies with kResourceExhausted. Success rate =
//               whatever happens to fit the shrinking budget.
//   spill       QueryOptions::spill: under pressure the operators stage
//               join builds and group state to temp files and keep going;
//               the same over-budget queries complete (slower, with disk
//               traffic) and results stay byte-identical.
//   ladder      PreparedQuery::ExecuteWithDegradation on queries prepared
//               WITHOUT spill: failed attempts descend spill -> fewer
//               threads -> minimal vectors until one survives — the
//               serving-layer answer when the operator knob wasn't set.
//
// Reported per budget x mode: success rate, latency p50/p99 across all
// executions, and total bytes spilled. The acceptance claim this bench
// demonstrates: at the tightest budget the ladder keeps >= 90% of the
// workload alive where fail-only keeps < 50%.
//
// Env: VCQ_SF (default 0.1; VCQ_QUICK=1 shrinks to 0.05), VCQ_REPS,
// VCQ_THREADS.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/mem_pool.h"

namespace {

using namespace vcq;
using runtime::QueryOptions;
using runtime::QueryResult;

enum class Mode { kFailOnly, kSpill, kLadder };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kFailOnly: return "fail-only";
    case Mode::kSpill: return "spill";
    case Mode::kLadder: return "ladder";
  }
  return "?";
}

struct Item {
  Engine engine;
  Query query;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return sorted[idx];
}

struct ModeResult {
  size_t ok = 0;
  size_t total = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t spilled_bytes = 0;
};

ModeResult RunMode(Session& session, const std::vector<Item>& items,
                   Mode mode, size_t threads, size_t budget, int reps) {
  const size_t live_baseline = runtime::MemPool::live_bytes();
  ModeResult out;
  std::vector<double> ms;
  for (const Item& item : items) {
    QueryOptions opt;
    opt.threads = threads;
    opt.memory_budget = budget;
    opt.spill = mode == Mode::kSpill;
    PreparedQuery q = session.Prepare(item.engine, item.query, opt);
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const QueryResult r = mode == Mode::kLadder ? q.ExecuteWithDegradation()
                                                  : q.Execute();
      const auto t1 = std::chrono::steady_clock::now();
      ++out.total;
      if (r.ok()) ++out.ok;
      out.spilled_bytes += r.spilled_bytes;
      ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  std::sort(ms.begin(), ms.end());
  out.p50_ms = Percentile(ms, 0.50);
  out.p99_ms = Percentile(ms, 0.99);
  // Degraded or not, every execution drains clean.
  if (runtime::MemPool::live_bytes() != live_baseline) {
    std::fprintf(stderr, "LEAK in mode %s: live %zu != baseline %zu\n",
                 ModeName(mode), runtime::MemPool::live_bytes(),
                 live_baseline);
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const double sf = benchutil::EnvSf(benchutil::Quick() ? 0.05 : 0.1);
  const size_t threads = benchutil::EnvThreads(4);
  const int reps = benchutil::EnvReps(benchutil::Quick() ? 2 : 5);

  const std::vector<Item> items = {
      {Engine::kTyper, Query::kQ1},   {Engine::kTectorwise, Query::kQ1},
      {Engine::kTyper, Query::kQ6},   {Engine::kTectorwise, Query::kQ6},
      {Engine::kTyper, Query::kQ3},   {Engine::kTectorwise, Query::kQ3},
      {Engine::kTyper, Query::kQ9},   {Engine::kTectorwise, Query::kQ9},
      {Engine::kTyper, Query::kQ18},  {Engine::kTectorwise, Query::kQ18},
  };

  benchutil::PrintHeader(
      "Ablation: degradation ladder under shrinking memory budgets",
      "not a paper artifact — robustness ablation for the PR 8 spill/"
      "degradation path",
      "TPC-H sf " + benchutil::Fmt(sf, 2) + ", " + std::to_string(threads) +
          " threads, " + std::to_string(items.size()) + " queries x " +
          std::to_string(reps) + " reps per budget x mode");

  const runtime::Database db = datagen::GenerateTpch(sf);
  Session session(db);

  // The budget axis is anchored at the heaviest query's measured in-memory
  // peak at this thread count.
  size_t max_peak = 0;
  for (const Item& item : items) {
    QueryOptions opt;
    opt.threads = threads;
    PreparedQuery q = session.Prepare(item.engine, item.query, opt);
    const QueryResult r = q.Execute();
    if (!r.ok()) {
      std::fprintf(stderr, "unconstrained %s %s failed\n",
                   EngineName(item.engine), QueryName(item.query));
      return 1;
    }
    max_peak = std::max(max_peak, q.measured_peak_bytes());
  }
  std::printf("heaviest measured peak: %.1f MiB\n\n",
              max_peak / double(1 << 20));

  benchutil::Table table({"budget", "mode", "ok", "success %", "p50 ms",
                          "p99 ms", "spilled MiB"});
  size_t tight_fail_ok = 0, tight_fail_total = 1;
  size_t tight_ladder_ok = 0, tight_ladder_total = 1;
  const int denominators[] = {2, 4, 8};
  for (int denom : denominators) {
    const size_t budget = std::max<size_t>(1, max_peak / denom);
    for (Mode mode : {Mode::kFailOnly, Mode::kSpill, Mode::kLadder}) {
      const ModeResult r = RunMode(session, items, mode, threads, budget,
                                   reps);
      table.AddRow(
          {"peak/" + std::to_string(denom), ModeName(mode),
           std::to_string(r.ok) + "/" + std::to_string(r.total),
           benchutil::Fmt(100.0 * double(r.ok) / double(r.total), 0),
           benchutil::Fmt(r.p50_ms, 2), benchutil::Fmt(r.p99_ms, 2),
           benchutil::Fmt(r.spilled_bytes / double(1 << 20), 1)});
      if (denom == denominators[2]) {
        if (mode == Mode::kFailOnly) {
          tight_fail_ok = r.ok;
          tight_fail_total = r.total;
        } else if (mode == Mode::kLadder) {
          tight_ladder_ok = r.ok;
          tight_ladder_total = r.total;
        }
      }
    }
  }
  table.Print();

  const double fail_rate =
      100.0 * double(tight_fail_ok) / double(tight_fail_total);
  const double ladder_rate =
      100.0 * double(tight_ladder_ok) / double(tight_ladder_total);
  std::printf(
      "\nAt the tightest budget (peak/8): fail-only survives %.0f%%, the\n"
      "ladder survives %.0f%% — degraded executions spill and shrink until\n"
      "they fit, and their results stay byte-identical to in-memory runs.\n",
      fail_rate, ladder_rate);
  if (!(ladder_rate >= 90.0 && fail_rate < 50.0)) {
    std::fprintf(stderr,
                 "acceptance regression: expected ladder >= 90%% and "
                 "fail-only < 50%% at peak/8\n");
    return 1;
  }
  return 0;
}
