// Figure 4: cycles per tuple split into memory-stall and other cycles as
// the scale factor grows. Paper: SF 1..100; the join queries' Typer bars
// grow mostly in stall cycles, while Tectorwise hides more miss latency
// (simple probe loops -> more outstanding loads).

#include <cstdio>
#include <vector>

#include "benchutil/bench.h"
#include "common/env_util.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const int reps = benchutil::EnvReps(2);
  std::vector<double> sfs = {1.0, 3.0};
  if (benchutil::Quick()) sfs = {0.05};
  const double extra = EnvDouble("VCQ_SF", 0);
  if (extra > 0) sfs.push_back(extra);

  benchutil::PrintHeader(
      "Figure 4: memory stalls vs data size (TPC-H, 1 thread)",
      "SF 1..100 (paper axis); memory-stall vs other cycles per tuple",
      "SF sweep per VCQ_SF; container RAM caps the sweep (DESIGN.md #4)");

  runtime::QueryOptions opt;
  opt.threads = 1;
  benchutil::Table table({"SF", "query", "engine", "ms", "cyc/tuple",
                          "stall/tuple", "stall %"});
  for (const double sf : sfs) {
    runtime::Database db = datagen::GenerateTpch(sf);
    for (Query q : TpchQueries()) {
      for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
        const auto m = benchutil::MeasureQuery(db, e, q, opt, reps);
        const double t = static_cast<double>(m.tuples);
        const double stall_share =
            m.counters.memory_stall_cycles / m.counters.cycles * 100.0;
        table.AddRow({benchutil::Fmt(sf, 2), QueryName(q), EngineName(e),
                      benchutil::Fmt(m.ms, 1),
                      benchutil::FmtCounter(m.counters.cycles / t, 1),
                      benchutil::FmtCounter(
                          m.counters.memory_stall_cycles / t, 1),
                      benchutil::FmtCounter(stall_share, 0)});
      }
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: growing SF inflates stall cycles, most strongly for "
      "Typer on Q3/Q9/Q18; TW's probe loops overlap misses better.\n");
  return 0;
}
