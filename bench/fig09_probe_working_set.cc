// Figure 9: hash-table probe cost vs working-set size, scalar vs SIMD.
// Paper: gains from SIMD diminish as the working set leaves the caches;
// beyond the LLC both variants converge to memory latency.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

namespace {

using namespace vcq;
using runtime::Hashmap;
using tectorwise::pos_t;

constexpr size_t kBatch = 4096;

struct Entry {
  Hashmap::EntryHeader header;
  int64_t key;
};

struct Workload {
  Hashmap ht;
  runtime::MemPool pool;
  std::vector<uint64_t> hashes;
  std::vector<pos_t> pos;
  std::vector<Hashmap::EntryHeader*> cand;
  std::vector<pos_t> cand_pos;
  size_t working_set_bytes = 0;

  explicit Workload(size_t entries)
      : hashes(kBatch), pos(kBatch), cand(kBatch), cand_pos(kBatch) {
    ht.SetSize(entries);
    for (size_t k = 0; k < entries; ++k) {
      auto* e = pool.Create<Entry>();
      e->header.next = nullptr;
      e->header.hash = runtime::HashMurmur2(k);
      e->key = static_cast<int64_t>(k);
      ht.InsertUnlocked(&e->header);
    }
    std::mt19937_64 rng(17);
    for (size_t i = 0; i < kBatch; ++i) {
      hashes[i] = runtime::HashMurmur2(rng() % entries);
      pos[i] = static_cast<pos_t>(i);
    }
    working_set_bytes =
        ht.capacity() * sizeof(void*) + entries * sizeof(Entry);
  }
};

Workload& GetWorkload(size_t entries) {
  static std::map<size_t, Workload*>* cache = new std::map<size_t, Workload*>();
  auto it = cache->find(entries);
  if (it == cache->end()) it = cache->emplace(entries, new Workload(entries)).first;
  return *it->second;
}

void BM_LookupScalar(benchmark::State& state) {
  Workload& w = GetWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::JoinCandidates(
        kBatch, w.hashes.data(), w.pos.data(), w.ht, w.cand.data(),
        w.cand_pos.data()));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["ws_MB"] =
      static_cast<double>(w.working_set_bytes) / (1 << 20);
}

void BM_LookupSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  Workload& w = GetWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::simd::JoinCandidates(
        kBatch, w.hashes.data(), w.pos.data(), w.ht, w.cand.data(),
        w.cand_pos.data()));
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["ws_MB"] =
      static_cast<double>(w.working_set_bytes) / (1 << 20);
}

// Entry counts spanning 128 KB .. ~768 MB working sets.
BENCHMARK(BM_LookupScalar)->RangeMultiplier(8)->Range(2048, 16 << 20);
BENCHMARK(BM_LookupSimd)->RangeMultiplier(8)->Range(2048, 16 << 20);

}  // namespace

int main(int argc, char** argv) {
  vcq::benchutil::PrintHeader(
      "Figure 9: probe cost vs working-set size",
      "128 KB .. 256 MB; SIMD helps only while the table is cache-resident",
      "ws_MB counter = directory + entries; compare Scalar/Simd rates");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
