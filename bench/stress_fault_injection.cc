// Randomized fault-injection stress (PR 6, CI job): each iteration draws a
// random (engine, thread count, fault point, hit ordinal, action) from a
// seed-driven stream and runs Q3 with the fault armed, asserting the
// drain-clean contract every time:
//   - a fired bad_alloc  => kResourceExhausted, zero rows;
//   - a fired cancel     => kCancelled, zero rows;
//   - a fired delay      => byte-identical kOk result;
//   - fault never fired  => byte-identical kOk result;
//   - always: MemPool::live_bytes() and the process governor back at their
//     pre-run baselines, and a clean rerun byte-identical.
// The seed comes from VCQ_FAULT_SEED (else the clock) and is printed up
// front AND on any violation, so a failing CI run replays locally with
//   VCQ_FAULT_SEED=<seed> ./stress_fault_injection
// VCQ_QUICK=1 shrinks the iteration count to CI size.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/fault_injector.h"
#include "runtime/mem_pool.h"
#include "runtime/resource_governor.h"

namespace {

using namespace vcq;
using runtime::ExecStatus;
using runtime::FaultAction;
using runtime::FaultInjector;
using runtime::FaultSpec;
using runtime::MemPool;
using runtime::QueryOptions;
using runtime::QueryResult;
using runtime::ResourceGovernor;

struct Draw {
  Engine engine;
  size_t threads;
  const char* point;
  uint64_t ordinal;
  uint64_t hits;
  FaultAction action;
};

std::string Describe(const Draw& d) {
  const char* action = d.action == FaultAction::kThrowBadAlloc ? "badalloc"
                       : d.action == FaultAction::kCancel      ? "cancel"
                                                               : "delay";
  return std::string(EngineName(d.engine)) +
         " threads=" + std::to_string(d.threads) + " point=" + d.point +
         ":" + std::to_string(d.ordinal) + "/" + std::to_string(d.hits) +
         " action=" + action;
}

}  // namespace

int main() {
  uint64_t seed = 0;
  if (const char* env = std::getenv("VCQ_FAULT_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  if (seed == 0)
    seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  const int iterations = benchutil::Quick() ? 60 : 500;
  std::printf("stress_fault_injection: seed=%llu iterations=%d\n",
              static_cast<unsigned long long>(seed), iterations);
  std::printf("(replay a failure with VCQ_FAULT_SEED=%llu)\n\n",
              static_cast<unsigned long long>(seed));

  const runtime::Database db = datagen::GenerateTpch(0.01);
  Session session(db);
  FaultInjector rng(seed);

  const Engine engines[] = {Engine::kTyper, Engine::kTectorwise};
  const size_t thread_counts[] = {1, 2, 4, 8};

  // Reference results and per-configuration hit counts, measured once.
  QueryResult expected[2];
  // hits[engine][threads index][point index]
  std::vector<std::vector<std::vector<uint64_t>>> hits(
      2, std::vector<std::vector<uint64_t>>(4));
  const auto& points = FaultInjector::KnownPoints();
  for (int e = 0; e < 2; ++e) {
    QueryOptions opt;
    opt.threads = 1;
    expected[e] = session.Prepare(engines[e], Query::kQ3, opt).Execute();
    if (!expected[e].ok()) {
      std::fprintf(stderr, "FAIL: clean %s run failed: %s\n",
                   EngineName(engines[e]),
                   runtime::StatusName(expected[e].status));
      return 1;
    }
    for (int t = 0; t < 4; ++t) {
      FaultInjector counter;
      QueryOptions copt;
      copt.threads = thread_counts[t];
      copt.fault = &counter;
      PreparedQuery probe = session.Prepare(engines[e], Query::kQ3, copt);
      if (!(probe.Execute() == expected[e])) {
        std::fprintf(stderr, "FAIL: dry run diverged (%s threads=%zu)\n",
                     EngineName(engines[e]), thread_counts[t]);
        return 1;
      }
      for (const char* point : points)
        hits[e][t].push_back(counter.HitCount(point));
    }
  }

  uint64_t fired_total = 0;
  int failures = 0;
  for (int iter = 0; iter < iterations && failures == 0; ++iter) {
    Draw d;
    const int e = static_cast<int>(rng.NextRand() % 2);
    const int t = static_cast<int>(rng.NextRand() % 4);
    d.engine = engines[e];
    d.threads = thread_counts[t];
    // Draw a point the configuration actually crosses.
    size_t p;
    do {
      p = static_cast<size_t>(rng.NextRand() % points.size());
    } while (hits[e][t][p] == 0);
    d.point = points[p];
    d.hits = hits[e][t][p];
    d.ordinal = rng.RandOrdinal(d.hits);
    const uint64_t a = rng.NextRand() % 10;
    // Weight toward the interesting unwind path.
    d.action = a < 7   ? FaultAction::kThrowBadAlloc
               : a < 9 ? FaultAction::kCancel
                       : FaultAction::kDelay;

    FaultInjector armed;
    FaultSpec spec;
    spec.action = d.action;
    spec.fire_on_hit = d.ordinal;
    spec.delay_us = 100;
    armed.Arm(d.point, spec);
    QueryOptions opt;
    opt.threads = d.threads;
    opt.fault = &armed;
    PreparedQuery q = session.Prepare(d.engine, Query::kQ3, opt);

    const size_t live_before = MemPool::live_bytes();
    const size_t gov_before = ResourceGovernor::Global().in_use();
    const QueryResult got = q.Execute();
    fired_total += armed.FiredCount();

    const auto fail = [&](const char* what) {
      std::fprintf(stderr,
                   "FAIL iter=%d seed=%llu: %s\n  draw: %s\n  status: %s "
                   "rows=%zu fired=%llu\n",
                   iter, static_cast<unsigned long long>(seed), what,
                   Describe(d).c_str(), runtime::StatusName(got.status),
                   got.rows.size(),
                   static_cast<unsigned long long>(armed.FiredCount()));
      ++failures;
    };

    if (armed.FiredCount() > 0 && d.action != FaultAction::kDelay) {
      const ExecStatus want = d.action == FaultAction::kCancel
                                  ? ExecStatus::kCancelled
                                  : ExecStatus::kResourceExhausted;
      if (got.status != want) fail("fired fault: wrong status");
      if (!got.rows.empty()) fail("fired fault: partial rows surfaced");
    } else {
      if (!(got == expected[e])) fail("un-fired/delay run diverged");
    }
    if (MemPool::live_bytes() != live_before) fail("live bytes leaked");
    if (ResourceGovernor::Global().in_use() != gov_before)
      fail("governor bytes leaked");
    if (failures == 0) {
      QueryOptions clean_opt;
      clean_opt.threads = d.threads;
      const QueryResult rerun =
          session.Prepare(d.engine, Query::kQ3, clean_opt).Execute();
      if (!(rerun == expected[e])) fail("clean rerun diverged");
    }
  }

  if (failures > 0) return 1;
  std::printf("OK: %d iterations, %llu faults fired, zero violations\n",
              iterations, static_cast<unsigned long long>(fired_total));
  return 0;
}
