// Table 1: CPU counters per tuple, TPC-H SF=1, 1 thread. Counters are
// normalized by the number of tuples scanned by each query (paper §3.4).
// Expected shape: Tectorwise executes up to ~2.4x more instructions and
// more L1 misses (materialization), near-identical LLC misses (same hash
// tables), higher IPC without being faster on Q1.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(2);
  benchutil::PrintHeader(
      "Table 1: CPU counters per tuple (TPC-H, 1 thread)",
      "SF=1, 1 thread; cycles/IPC/instr/L1/LLC/branch-miss per tuple",
      "SF=" + benchutil::Fmt(sf, 2) +
          "; 'n/a' = perf events unavailable in this environment");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  benchutil::Table table({"query", "engine", "ms", "cycles", "IPC", "instr.",
                          "L1miss", "LLCmiss", "brmiss"});
  for (Query q : TpchQueries()) {
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      const auto m = benchutil::MeasureQuery(db, e, q, opt, reps);
      const double t = static_cast<double>(m.tuples);
      table.AddRow({QueryName(q), EngineName(e), benchutil::Fmt(m.ms, 1),
                    benchutil::FmtCounter(m.counters.cycles / t, 1),
                    benchutil::FmtCounter(m.counters.ipc(), 1),
                    benchutil::FmtCounter(m.counters.instructions / t, 1),
                    benchutil::FmtCounter(m.counters.l1d_misses / t, 2),
                    benchutil::FmtCounter(m.counters.llc_misses / t, 2),
                    benchutil::FmtCounter(m.counters.branch_misses / t, 2)});
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: TW needs up to 2.4x more instructions and ~3x more L1 "
      "misses; LLC misses match; IPC is higher for TW but is not a "
      "performance proxy (Q1).\n");
  return 0;
}
