// Section 4.4 table: Star Schema Benchmark counters, 1 thread.
// Paper: SF=30; SSB behaves like TPC-H Q3/Q9 — Tectorwise needs more
// instructions but hides memory stalls better on the probe-heavy flights.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/ssb.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(5.0);
  const int reps = benchutil::EnvReps(2);
  benchutil::PrintHeader(
      "Sec. 4.4: Star Schema Benchmark, 1 thread",
      "SF=30, 1 thread; cycles/IPC/instr/L1/LLC/branch/memstall per tuple",
      "SF=" + benchutil::Fmt(sf, 2) + " (container RAM; VCQ_SF to change)");

  runtime::Database db = datagen::GenerateSsb(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  benchutil::Table table({"query", "engine", "ms", "cycles", "IPC", "instr.",
                          "L1miss", "LLCmiss", "brmiss", "memstall"});
  for (Query q : SsbQueries()) {
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      const auto m = benchutil::MeasureQuery(db, e, q, opt, reps);
      const double t = static_cast<double>(m.tuples);
      table.AddRow(
          {QueryName(q), EngineName(e), benchutil::Fmt(m.ms, 1),
           benchutil::FmtCounter(m.counters.cycles / t, 1),
           benchutil::FmtCounter(m.counters.ipc(), 1),
           benchutil::FmtCounter(m.counters.instructions / t, 1),
           benchutil::FmtCounter(m.counters.l1d_misses / t, 2),
           benchutil::FmtCounter(m.counters.llc_misses / t, 2),
           benchutil::FmtCounter(m.counters.branch_misses / t, 2),
           benchutil::FmtCounter(m.counters.memory_stall_cycles / t, 2)});
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: TW needs more instructions but fewer memory-stall "
      "cycles; results mirror TPC-H Q3/Q9.\n");
  return 0;
}
