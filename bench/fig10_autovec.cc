// Figure 10 (substitution, DESIGN.md #4): compiler auto-vectorization.
// The paper rebuilds Tectorwise's primitives with ICC 18's auto-vectorizer;
// ICC is unavailable, so the same scalar kernel bodies are compiled twice
// with GCC (-fno-tree-vectorize vs -O3 + AVX-512) and compared against the
// hand-written AVX-512 primitives on TPC-H-shaped data. Metrics match the
// paper: reduction of instructions and of time.

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "common/cpu_info.h"
#include "runtime/perf_counters.h"
#include "tectorwise/autovec.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

namespace {

using namespace vcq;
using tectorwise::pos_t;

struct KernelStats {
  double ns_per_elem = 0;
  double instr_per_elem = 0;
};

template <typename Fn>
KernelStats MeasureKernel(size_t n, int reps, Fn&& fn) {
  // Warm up, then time and count.
  fn();
  runtime::PerfCounters counters;
  const auto start = std::chrono::steady_clock::now();
  counters.Start();
  for (int r = 0; r < reps; ++r) fn();
  const auto values = counters.Stop();
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  KernelStats s;
  s.ns_per_elem = ns / static_cast<double>(n) / reps;
  s.instr_per_elem =
      values.instructions / static_cast<double>(n) / reps;
  return s;
}

std::string Reduction(double base, double v) {
  if (base != base || v != v) return "n/a";  // NaN counters
  return benchutil::Fmt((1.0 - v / base) * 100.0, 0) + "%";
}

}  // namespace

int main() {
  using tectorwise::autovec_off::HashI64Dense;
  const size_t n = benchutil::Quick() ? (1 << 18) : (1 << 22);
  const int reps = 20;
  const bool avx512 = CpuInfo::HasAvx512();

  benchutil::PrintHeader(
      "Figure 10: compiler auto-vectorization of TW primitives",
      "ICC 18 auto-vec: 20-60% fewer instructions, ~no runtime gain",
      std::string("GCC -fno-tree-vectorize vs -O3+AVX-512 vs manual ") +
          (avx512 ? "(AVX-512 on)" : "(AVX-512 OFF: autovec/manual skipped)"));

  std::mt19937_64 rng(23);
  std::vector<int32_t> dates(n);
  std::vector<int64_t> a(n), b(n);
  std::vector<int64_t> out64(n);
  std::vector<uint64_t> hashes(n);
  std::vector<pos_t> sel, out(n);
  for (size_t i = 0; i < n; ++i) {
    dates[i] = static_cast<int32_t>(rng() % 2557);
    a[i] = static_cast<int64_t>(rng() % 10000);
    b[i] = static_cast<int64_t>(rng() % 100);
    if (i % 5 != 0) sel.push_back(static_cast<pos_t>(i));
  }

  benchutil::Table table({"kernel", "variant", "ns/elem", "instr/elem",
                          "instr. reduction", "time reduction"});
  auto report = [&](const char* kernel, const KernelStats& base,
                    const char* variant, const KernelStats& s) {
    table.AddRow({kernel, variant, benchutil::Fmt(s.ns_per_elem, 3),
                  benchutil::FmtCounter(s.instr_per_elem, 2),
                  Reduction(base.instr_per_elem, s.instr_per_elem),
                  Reduction(base.ns_per_elem, s.ns_per_elem)});
  };

  // --- selection (between, dense) -----------------------------------------
  {
    const auto base = MeasureKernel(n, reps, [&] {
      tectorwise::autovec_off::SelBetweenI32Dense(n, dates.data(), 500, 1500,
                                                  out.data());
    });
    report("sel_between_i32", base, "scalar", base);
    if (avx512) {
      report("sel_between_i32", base, "autovec",
             MeasureKernel(n, reps, [&] {
               tectorwise::autovec_on::SelBetweenI32Dense(
                   n, dates.data(), 500, 1500, out.data());
             }));
      report("sel_between_i32", base, "manual",
             MeasureKernel(n, reps, [&] {
               tectorwise::simd::SelBetweenI32Dense(n, dates.data(), 500,
                                                    1500, out.data());
             }));
    }
  }

  // --- selection (sparse) ---------------------------------------------------
  {
    const auto base = MeasureKernel(sel.size(), reps, [&] {
      tectorwise::autovec_off::SelLessI64Sparse(sel.size(), sel.data(),
                                                b.data(), 40, out.data());
    });
    report("sel_less_i64_sparse", base, "scalar", base);
    if (avx512) {
      report("sel_less_i64_sparse", base, "autovec",
             MeasureKernel(sel.size(), reps, [&] {
               tectorwise::autovec_on::SelLessI64Sparse(
                   sel.size(), sel.data(), b.data(), 40, out.data());
             }));
      report("sel_less_i64_sparse", base, "manual",
             MeasureKernel(sel.size(), reps, [&] {
               tectorwise::simd::SelLessI64Sparse(sel.size(), sel.data(),
                                                  b.data(), 40, out.data());
             }));
    }
  }

  // --- hashing ---------------------------------------------------------------
  {
    const auto base = MeasureKernel(n, reps, [&] {
      tectorwise::autovec_off::HashI64Dense(n, a.data(), hashes.data());
    });
    report("hash_murmur2_i64", base, "scalar", base);
    if (avx512) {
      report("hash_murmur2_i64", base, "autovec",
             MeasureKernel(n, reps, [&] {
               tectorwise::autovec_on::HashI64Dense(n, a.data(),
                                                    hashes.data());
             }));
      std::vector<pos_t> pos(n);
      report("hash_murmur2_i64", base, "manual",
             MeasureKernel(n, reps, [&] {
               tectorwise::simd::HashI64Compact(n, nullptr, a.data(),
                                                hashes.data(), pos.data());
             }));
    }
  }

  // --- projection -------------------------------------------------------------
  {
    const auto base = MeasureKernel(n, reps, [&] {
      tectorwise::autovec_off::MapMulI64(n, a.data(), b.data(), out64.data());
    });
    report("map_mul_i64", base, "scalar", base);
    if (avx512) {
      report("map_mul_i64", base, "autovec", MeasureKernel(n, reps, [&] {
               tectorwise::autovec_on::MapMulI64(n, a.data(), b.data(),
                                                 out64.data());
             }));
    }
  }

  // --- aggregation -----------------------------------------------------------
  {
    volatile int64_t sink = 0;
    const auto base = MeasureKernel(n, reps, [&] {
      sink = sink + tectorwise::autovec_off::SumI64(n, a.data());
    });
    report("agg_sum_i64", base, "scalar", base);
    if (avx512) {
      report("agg_sum_i64", base, "autovec", MeasureKernel(n, reps, [&] {
               sink = sink + tectorwise::autovec_on::SumI64(n, a.data());
             }));
    }
    (void)sink;
  }

  table.Print();
  std::printf(
      "\npaper shape: auto-vectorization removes 20-60%% of instructions on "
      "vectorizable kernels yet barely moves runtime; compress-store "
      "selection patterns resist GCC's vectorizer entirely (ICC with "
      "AVX-512 handled them) — auto-vec is not a fire-and-forget "
      "replacement for manual SIMD.\n");
  return 0;
}
