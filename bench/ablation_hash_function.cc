// Ablation (paper §4.1): hash-function sensitivity of the two engines.
// "Murmur2 requires twice as many instructions as CRC hashing, but has
// higher throughput and is therefore slightly faster in Tectorwise, which
// separates hash computation from probing. For Typer, in contrast, the CRC
// hash function improves performance up to 40%" — because lower latency
// lengthens the speculation window of the fused loop.
//
// Reproduced at the mechanism level: probe a large (cache-missing) table
// (a) Typer-style — hash and probe fused in one loop, the hash sits on the
//     load's critical path;
// (b) Tectorwise-style — a hash primitive fills a vector, then a probe
//     primitive consumes it (hash latency off the critical path).

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/core.h"

namespace {

using namespace vcq;
using runtime::Hashmap;
using tectorwise::pos_t;

struct Entry {
  Hashmap::EntryHeader header;
  int64_t key;
};

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using HashFn = uint64_t (*)(uint64_t);

uint64_t Murmur(uint64_t k) { return runtime::HashMurmur2(k); }
uint64_t Crc(uint64_t k) { return runtime::HashCrc32(k); }

// (a) fused: hash -> bucket load -> chain walk, all in one iteration.
template <HashFn kHash>
int64_t ProbeFused(const Hashmap& ht, const std::vector<int64_t>& keys) {
  int64_t found = 0;
  for (const int64_t key : keys) {
    const uint64_t h = kHash(static_cast<uint64_t>(key));
    for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
      if (e->hash == h && reinterpret_cast<const Entry*>(e)->key == key) {
        ++found;
        break;
      }
    }
  }
  return found;
}

// (b) vectorized: hash primitive fills hashes[], probe primitive consumes.
template <HashFn kHash>
int64_t ProbeVectorized(const Hashmap& ht, const std::vector<int64_t>& keys,
                        size_t vecsize) {
  std::vector<uint64_t> hashes(vecsize);
  int64_t found = 0;
  for (size_t base = 0; base < keys.size(); base += vecsize) {
    const size_t n = std::min(vecsize, keys.size() - base);
    for (size_t i = 0; i < n; ++i)
      hashes[i] = kHash(static_cast<uint64_t>(keys[base + i]));
    for (size_t i = 0; i < n; ++i) {
      const uint64_t h = hashes[i];
      const int64_t key = keys[base + i];
      for (auto* e = ht.FindChainTagged(h); e != nullptr; e = e->next) {
        if (e->hash == h && reinterpret_cast<const Entry*>(e)->key == key) {
          ++found;
          break;
        }
      }
    }
  }
  return found;
}

template <HashFn kHash>
void BuildTable(Hashmap& ht, runtime::MemPool& pool, size_t entries) {
  ht.SetSize(entries);
  for (size_t k = 0; k < entries; ++k) {
    auto* e = pool.Create<Entry>();
    e->header.next = nullptr;
    e->header.hash = kHash(k);
    e->key = static_cast<int64_t>(k);
    ht.InsertUnlocked(&e->header);
  }
}

}  // namespace

int main() {
  const size_t entries = benchutil::Quick() ? (1 << 18) : (1 << 23);
  const size_t probes = benchutil::Quick() ? 500000 : 8000000;
  benchutil::PrintHeader(
      "Ablation: hash function vs execution model (paper Sec. 4.1)",
      "CRC (low latency) helps fused loops; Murmur (throughput) suits "
      "separate hash primitives",
      std::to_string(entries) + "-entry out-of-cache table, " +
          std::to_string(probes) + " probes");

  std::mt19937_64 rng(43);
  std::vector<int64_t> keys(probes);
  for (auto& k : keys) k = static_cast<int64_t>(rng() % entries);

  runtime::MemPool pool_m, pool_c;
  Hashmap ht_murmur, ht_crc;
  BuildTable<&Murmur>(ht_murmur, pool_m, entries);
  BuildTable<&Crc>(ht_crc, pool_c, entries);

  benchutil::Table table({"model", "hash", "ns/probe"});
  auto run = [&](const char* model, const char* name, auto&& fn) {
    fn();  // warm-up
    const double start = NowNs();
    volatile int64_t f = fn();
    (void)f;
    table.AddRow({model, name,
                  benchutil::Fmt((NowNs() - start) / probes, 1)});
  };
  run("fused (Typer-style)", "murmur2",
      [&] { return ProbeFused<&Murmur>(ht_murmur, keys); });
  run("fused (Typer-style)", "crc32",
      [&] { return ProbeFused<&Crc>(ht_crc, keys); });
  run("vectorized (TW-style)", "murmur2",
      [&] { return ProbeVectorized<&Murmur>(ht_murmur, keys, 1024); });
  run("vectorized (TW-style)", "crc32",
      [&] { return ProbeVectorized<&Crc>(ht_crc, keys, 1024); });
  table.Print();
  std::printf(
      "\npaper shape: CRC's lower latency matters in the fused loop "
      "(Typer up to 40%% on large tables); with the hash in a separate "
      "primitive the function's latency is hidden and the two converge "
      "(TW slightly prefers Murmur's throughput).\n");
  return 0;
}
