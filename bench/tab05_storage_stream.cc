// Table 5 (substitution, DESIGN.md #4): out-of-memory execution. The paper
// streams SF=100 tables from a 1.4 GB/s SATA-SSD RAID; here the working
// set is spilled to a file and replayed through a bandwidth-capped loader
// concurrently with the query. Reported runtime is the completed overlap
// of compute and I/O (the query finishes no earlier than its data): an
// idealized fully-overlapped streaming model.

#include <chrono>
#include <cstdio>
#include <vector>

#include "benchutil/bench.h"
#include "common/env_util.h"
#include "datagen/tpch.h"
#include "runtime/throttled_source.h"

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(2.0);
  const int reps = benchutil::EnvReps(2);
  const size_t threads = benchutil::EnvThreads(0);
  const uint64_t bandwidth = static_cast<uint64_t>(
      EnvDouble("VCQ_BANDWIDTH_GBPS", 1.4) * (1ull << 30));

  benchutil::PrintHeader(
      "Table 5: streaming from secondary storage (throttled replay)",
      "SF=100, 20 threads, 3x SATA SSD RAID-5 @ 1.4 GB/s",
      "SF=" + benchutil::Fmt(sf, 2) + ", " + std::to_string(threads) +
          " threads, replay capped at " +
          benchutil::Fmt(static_cast<double>(bandwidth) / (1 << 30), 2) +
          " GB/s");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = threads;

  // Spill the full working set once (every column the queries scan).
  runtime::ThrottledSource source("/tmp/vcq_tab05_spill.bin", bandwidth);
  {
    // One representative byte stream of the database's size: the loader
    // replays exactly as many bytes as the tables occupy.
    std::vector<char> chunk(8 << 20, 0x5A);
    uint64_t remaining = db.byte_size();
    while (remaining > 0) {
      const uint64_t n = std::min<uint64_t>(remaining, chunk.size());
      source.Spill(chunk.data(), n);
      remaining -= n;
    }
  }
  std::printf("working set: %.2f GB -> replay floor %.0f ms\n\n",
              static_cast<double>(db.byte_size()) / (1 << 30),
              static_cast<double>(db.byte_size()) /
                  static_cast<double>(bandwidth) * 1000.0);

  benchutil::Table table({"query", "Typer ms", "TW ms", "Ratio",
                          "in-mem Typer", "in-mem TW"});
  for (Query q : TpchQueries()) {
    double typer_ms = 0, tw_ms = 0;
    for (Engine e : {Engine::kTyper, Engine::kTectorwise}) {
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        runtime::ThrottledSource replay("/tmp/vcq_tab05_replay.bin",
                                        bandwidth);
        // Per-query replay volume: only the tables this query scans.
        std::vector<char> chunk(8 << 20, 0x5A);
        uint64_t bytes = 0;
        // Approximate per-query scan volume by tuple share of the DB.
        bytes = db.byte_size() *
                benchutil::TuplesScanned(db, q) /
                (db["lineitem"].tuple_count() + db["orders"].tuple_count() +
                 db["customer"].tuple_count() + db["part"].tuple_count() +
                 db["partsupp"].tuple_count() +
                 db["supplier"].tuple_count());
        uint64_t remaining = bytes;
        while (remaining > 0) {
          const uint64_t n = std::min<uint64_t>(remaining, chunk.size());
          replay.Spill(chunk.data(), n);
          remaining -= n;
        }
        const double start = NowMs();
        replay.StartReplay();
        RunQuery(db, e, q, opt);
        replay.Join();  // completion = max(compute, I/O)
        best = std::min(best, NowMs() - start);
      }
      (e == Engine::kTyper ? typer_ms : tw_ms) = best;
    }
    const auto typer_mem = benchutil::MeasureQuery(db, Engine::kTyper, q,
                                                   opt, reps);
    const auto tw_mem = benchutil::MeasureQuery(db, Engine::kTectorwise, q,
                                                opt, reps);
    table.AddRow({QueryName(q), benchutil::Fmt(typer_ms, 0),
                  benchutil::Fmt(tw_ms, 0),
                  benchutil::Fmt(typer_ms / tw_ms, 2),
                  benchutil::Fmt(typer_mem.ms, 0),
                  benchutil::Fmt(tw_mem.ms, 0)});
  }
  table.Print();
  std::printf(
      "\npaper shape: engine differences shrink (Ratio moves toward 1) but "
      "remain visible; scan-dominated Q1/Q6 are hit hardest by the "
      "bandwidth cap.\n");
  return 0;
}
