// Ablation (paper §9.1): relaxed operator fusion — Peloton's hybrid of
// compilation and vectorization. The fused Typer probe pipeline is split at
// an explicit materialization boundary with software prefetching of the
// staged hash-table buckets and chain heads (the reusable
// typer::JoinTable::StagedLookup path; opt.rof applies to every Typer join
// query, Q9 shown here as the paper's memory-bound example). "If the query
// optimizer's decision about whether to break up a pipeline is correct,
// Peloton can be faster than both standard models."

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(3);
  benchutil::PrintHeader(
      "Ablation: relaxed operator fusion on Q9 (paper Sec. 9.1)",
      "staged probes + prefetching can beat both standard models on "
      "memory-bound joins",
      "SF=" + benchutil::Fmt(sf, 2) + ", 1 thread; larger VCQ_SF makes the "
                                      "hash tables miss caches harder");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  const auto fused =
      benchutil::MeasureQuery(db, Engine::kTyper, Query::kQ9, opt, reps);
  opt.rof = true;
  const auto rof =
      benchutil::MeasureQuery(db, Engine::kTyper, Query::kQ9, opt, reps);
  opt.rof = false;
  const auto tw =
      benchutil::MeasureQuery(db, Engine::kTectorwise, Query::kQ9, opt, reps);

  benchutil::Table table({"variant", "ms", "vs fused"});
  table.AddRow({"Typer (fully fused)", benchutil::Fmt(fused.ms, 1), "1.00x"});
  table.AddRow({"Typer + ROF (staged, prefetch)", benchutil::Fmt(rof.ms, 1),
                benchutil::Fmt(fused.ms / rof.ms, 2) + "x"});
  table.AddRow({"Tectorwise", benchutil::Fmt(tw.ms, 1),
                benchutil::Fmt(fused.ms / tw.ms, 2) + "x"});
  table.Print();
  std::printf(
      "\npaper shape: breaking the pipeline buys the same latency-hiding "
      "that favors Tectorwise on join queries while keeping the fused "
      "loop's low instruction count — the hybrid sits at or above both "
      "(Fig. 13's design space).\n");
  return 0;
}
