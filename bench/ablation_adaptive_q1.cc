// Ablation (paper §8.4): VectorWise's micro-adaptive ordered aggregation —
// the optimization that makes the production vectorized system faster than
// plain Tectorwise on TPC-H Q1 (Table 2). Per vector, tuples are
// partitioned into per-group selection vectors and aggregated with partial
// sums in registers, replacing per-tuple hash-table updates with one group
// update per vector.

#include <cstdio>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(3);
  benchutil::PrintHeader(
      "Ablation: adaptive ordered aggregation on Q1 (paper Sec. 8.4)",
      "VectorWise beats Tectorwise on Q1 via adaptive pre-partitioning "
      "(Table 2: 71 vs 85 ms)",
      "SF=" + benchutil::Fmt(sf, 2) + ", 1 thread");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::QueryOptions opt;
  opt.threads = 1;

  const auto typer = benchutil::MeasureQuery(db, Engine::kTyper, Query::kQ1,
                                             opt, reps);
  const auto tw =
      benchutil::MeasureQuery(db, Engine::kTectorwise, Query::kQ1, opt, reps);
  opt.adaptive = true;
  const auto tw_adaptive =
      benchutil::MeasureQuery(db, Engine::kTectorwise, Query::kQ1, opt, reps);

  benchutil::Table table({"variant", "ms", "vs plain TW"});
  table.AddRow({"Typer (compiled)", benchutil::Fmt(typer.ms, 1),
                benchutil::Fmt(tw.ms / typer.ms, 2) + "x"});
  table.AddRow({"Tectorwise (hash agg)", benchutil::Fmt(tw.ms, 1), "1.00x"});
  table.AddRow({"Tectorwise (adaptive ordered agg)",
                benchutil::Fmt(tw_adaptive.ms, 1),
                benchutil::Fmt(tw.ms / tw_adaptive.ms, 2) + "x"});
  table.Print();
  std::printf(
      "\npaper shape: the adaptive variant removes most per-tuple "
      "hash-aggregation work and closes much of the Q1 gap to the "
      "compiled engine — the effect behind VectorWise's Table 2 Q1 "
      "number.\n");
  return 0;
}
