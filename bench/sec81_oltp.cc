// Section 8.1 (qualitative in the paper, quantified here): OLTP point
// accesses. "For OLTP workloads, vectorization has little benefit over
// traditional Volcano-style iteration. With compilation, it is possible to
// compile all queries of a stored procedure into a single, efficient
// machine code fragment."
//
// Workload: N account-balance transactions against the customer table via
// a primary-key hash index; each transaction looks up one customer and
// updates c_acctbal. Variants:
//   compiled  — one fused function per transaction (Typer / stored proc)
//   vector-1  — vectorized primitives invoked with vector size 1
//               (per-tuple interpretation, nothing amortized)
//   vector-1k — the same primitives over batches of 1024 transactions
//               (only valid if transactions are batchable — OLAP-style)

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/primitives.h"

namespace {

using namespace vcq;
using runtime::Hashmap;
using tectorwise::pos_t;

struct CustEntry {
  Hashmap::EntryHeader header;
  int32_t custkey;
  int64_t* acctbal;  // points into the column (update target)
};

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const double sf = benchutil::EnvSf(1.0);
  const size_t txns = benchutil::Quick() ? 100000 : 2000000;
  benchutil::PrintHeader(
      "Sec. 8.1: OLTP point transactions (compiled vs vectorized)",
      "qualitative claim: vectorization does not amortize over single "
      "tuples; compilation does stored procedures in one fragment",
      "SF=" + benchutil::Fmt(sf, 2) + ", " + std::to_string(txns) +
          " balance-update transactions");

  runtime::Database db = datagen::GenerateTpch(sf);
  runtime::Relation& customer = db["customer"];
  const auto custkey = customer.Col<int32_t>("c_custkey");
  auto acctbal = customer.MutableCol<int64_t>("c_acctbal");

  // Primary-key hash index.
  Hashmap index;
  runtime::MemPool pool;
  index.SetSize(customer.tuple_count());
  for (size_t i = 0; i < customer.tuple_count(); ++i) {
    auto* e = pool.Create<CustEntry>();
    e->header.next = nullptr;
    e->header.hash = runtime::HashMurmur2(static_cast<uint32_t>(custkey[i]));
    e->custkey = custkey[i];
    e->acctbal = &acctbal[i];
    index.InsertUnlocked(&e->header);
  }

  // Transaction inputs.
  std::mt19937_64 rng(31);
  std::vector<int32_t> txn_keys(txns);
  std::vector<int64_t> txn_amounts(txns);
  for (size_t i = 0; i < txns; ++i) {
    txn_keys[i] =
        static_cast<int32_t>(rng() % customer.tuple_count()) + 1;
    txn_amounts[i] = static_cast<int64_t>(rng() % 1000) - 500;
  }

  benchutil::Table table({"variant", "ns/txn", "relative"});
  double compiled_ns = 0;

  // --- compiled: one fused fragment per transaction ------------------------
  {
    const double start = NowNs();
    for (size_t i = 0; i < txns; ++i) {
      const int32_t key = txn_keys[i];
      const uint64_t h = runtime::HashMurmur2(static_cast<uint32_t>(key));
      for (auto* e = index.FindChainTagged(h); e != nullptr; e = e->next) {
        auto* ce = reinterpret_cast<CustEntry*>(e);
        if (e->hash == h && ce->custkey == key) {
          *ce->acctbal += txn_amounts[i];
          break;
        }
      }
    }
    compiled_ns = (NowNs() - start) / static_cast<double>(txns);
    table.AddRow({"compiled (fused)", benchutil::Fmt(compiled_ns, 1), "1.0"});
  }

  // --- vectorized with vector size v ---------------------------------------
  auto run_vectorized = [&](size_t v, const char* label) {
    std::vector<uint64_t> hashes(v);
    std::vector<pos_t> pos(v);
    std::vector<Hashmap::EntryHeader*> cand(v), hits(v);
    std::vector<pos_t> cand_pos(v), hit_pos(v);
    std::vector<uint8_t> match(v);
    const double start = NowNs();
    for (size_t base = 0; base < txns; base += v) {
      const size_t n = std::min(v, txns - base);
      const int32_t* keys = txn_keys.data() + base;
      // The Fig. 2b primitive sequence, per batch of n transactions.
      tectorwise::HashCompact<int32_t>(n, nullptr, keys, hashes.data(),
                                       pos.data());
      size_t m = tectorwise::JoinCandidates(n, hashes.data(), pos.data(),
                                            index, cand.data(),
                                            cand_pos.data());
      size_t hit_count = 0;
      while (m > 0) {
        tectorwise::CmpEntryKeyInit<int32_t>(m, cand.data(), cand_pos.data(),
                                             keys,
                                             offsetof(CustEntry, custkey),
                                             match.data());
        m = tectorwise::ExtractHitsAdvance(m, cand.data(), cand_pos.data(),
                                           match.data(), hits.data(),
                                           hit_pos.data(), hit_count);
      }
      for (size_t k = 0; k < hit_count; ++k) {
        auto* ce = reinterpret_cast<CustEntry*>(hits[k]);
        *ce->acctbal += txn_amounts[base + hit_pos[k]];
      }
    }
    const double ns = (NowNs() - start) / static_cast<double>(txns);
    table.AddRow({label, benchutil::Fmt(ns, 1),
                  benchutil::Fmt(ns / compiled_ns, 1) + "x"});
  };
  run_vectorized(1, "vectorized, vector=1");
  run_vectorized(1024, "vectorized, vector=1024 (batchable only)");

  table.Print();
  std::printf(
      "\npaper shape: per-transaction vectorization pays full "
      "interpretation cost (vector=1 clearly slower than compiled); the "
      "amortization only returns once transactions can be batched — which "
      "OLTP usually cannot do.\n");
  return 0;
}
