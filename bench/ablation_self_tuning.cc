// Ablation (paper §9.1 / PR 7): self-tuned execution. Every
// data-dependent knob the paper sweeps by hand — compaction policy,
// join-build protocol, ROF staged probes and their block size, vector
// size — is learned per prepared query by runtime::Tuner (bounded
// seed-deterministic exploration, then UCB1). This bench measures the
// learned configuration against every static arm across selectivities
// (Tectorwise Q6 via parameter bindings) and scale factors (Typer Q9),
// checks byte-identity of results across all arms, and reports how close
// the learned arm lands to the best static arm (target: within 5%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "api/session.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/tuner.h"

namespace {

using vcq::Engine;
using vcq::PreparedQuery;
using vcq::Query;
using vcq::Session;
using vcq::runtime::BuildMode;
using vcq::runtime::CompactionMode;
using vcq::runtime::QueryOptions;
using vcq::runtime::QueryResult;
using vcq::runtime::TuningMode;

struct StaticVariant {
  std::string label;
  QueryOptions opt;
};

double TimedExecMs(const PreparedQuery& q) {
  const auto start = std::chrono::steady_clock::now();
  const QueryResult result = q.Execute();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed mid-measurement\n");
    std::exit(1);
  }
  return ms;
}

// Per-variant aggregate: the minimum, not the median — these queries are
// deterministic, so machine noise is purely additive and the best
// observation is the honest cost estimate (same reasoning as the tuner's
// own min-cost arm statistic).
double Best(const std::vector<double>& times) {
  return *std::min_element(times.begin(), times.end());
}

// One cell of the sweep: time every static arm and the learned-then-frozen
// configuration, byte-check all of them against the default-config result,
// and append the rows. Returns learned_ms / best_static_ms.
double RunCell(Session& session, Engine engine, Query query,
               const std::vector<StaticVariant>& statics, int reps,
               const std::function<void(PreparedQuery&)>& bind,
               const std::string& cell, vcq::benchutil::Table& table,
               bool& identical) {
  QueryResult reference;
  std::vector<PreparedQuery> handles;
  for (size_t v = 0; v < statics.size(); ++v) {
    PreparedQuery q = session.Prepare(engine, query, statics[v].opt);
    bind(q);
    const QueryResult result = q.Execute();  // warm + identity check
    if (v == 0) {
      reference = result;
    } else if (!(result == reference)) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: %s %s vs %s\n", cell.c_str(),
                   statics[v].label.c_str(), statics[0].label.c_str());
    }
    handles.push_back(q);
  }

  // Learn on the same prepared handle shape, then freeze.
  QueryOptions learn_opt = statics[0].opt;
  learn_opt.tuning = TuningMode::kLearn;
  PreparedQuery learned = session.Prepare(engine, query, learn_opt);
  bind(learned);
  int learn_execs = 0;
  while (!learned.TuningConverged() && learn_execs < 128) {
    if (!(learned.Execute() == reference)) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: %s learned exec %d\n", cell.c_str(),
                   learn_execs);
    }
    ++learn_execs;
  }
  // UCB-driven refinement rounds: exploration visits each arm only
  // explore_reps times, so the means are noisy when arms sit within a few
  // percent of each other; refinement revisits the contenders before the
  // freeze.
  for (int i = 0, n = 2 * learn_execs; i < n; ++i, ++learn_execs) {
    if (!(learned.Execute() == reference)) {
      identical = false;
      std::fprintf(stderr, "MISMATCH: %s refine exec %d\n", cell.c_str(), i);
    }
  }
  learned.FreezeTuning();
  handles.push_back(learned);

  // Interleaved timing rounds — every variant (statics + learned) runs
  // once per round, so slow machine drift hits all of them equally
  // instead of penalizing whichever phase ran last.
  std::vector<std::vector<double>> times(handles.size());
  for (int r = 0; r < reps; ++r) {
    for (size_t v = 0; v < handles.size(); ++v) {
      times[v].push_back(TimedExecMs(handles[v]));
    }
  }
  std::vector<double> ms(handles.size());
  for (size_t v = 0; v < handles.size(); ++v) ms[v] = Best(times[v]);

  const double learned_ms = ms.back();
  const size_t best = static_cast<size_t>(
      std::min_element(ms.begin(), ms.end() - 1) - ms.begin());
  for (size_t v = 0; v < statics.size(); ++v) {
    table.AddRow({cell, statics[v].label, vcq::benchutil::Fmt(ms[v], 2),
                  vcq::benchutil::Fmt(ms[v] / ms[best], 2) + "x",
                  v == best ? "best static" : ""});
  }
  const double ratio = learned_ms / ms[best];
  table.AddRow({cell, "learned (" + std::to_string(learn_execs) + " execs)",
                vcq::benchutil::Fmt(learned_ms, 2),
                vcq::benchutil::Fmt(ratio, 2) + "x",
                ratio <= 1.05 ? "within 5%" : "OFF TARGET"});
  return ratio;
}

}  // namespace

int main() {
  using namespace vcq;
  const int reps = benchutil::EnvReps(3);
  const bool quick = benchutil::Quick();
  const std::vector<double> sfs =
      quick ? std::vector<double>{0.05}
            : std::vector<double>{0.1, benchutil::EnvSf(1.0)};
  benchutil::PrintHeader(
      "Ablation: self-tuned execution knobs (paper Sec. 9.1)",
      "the optimizer, not the engineer, should pick execution strategies",
      "seed=" + std::to_string(runtime::Tuner::ResolveSeed(0)) +
          " (VCQ_TUNER_SEED replays the arm sequence), 1 thread");

  bool identical = true;
  double worst_ratio = 0;

  // --- Tectorwise Q6: compaction/vector arms across selectivities -----------
  // shipdate_hi widens the qualifying window; compaction pays off at low
  // density and costs pure overhead at high density, so the best static
  // arm moves with the binding — exactly what a per-query tuner exploits.
  std::vector<StaticVariant> tw;
  {
    QueryOptions base;
    base.threads = 1;
    tw.push_back({"compaction=never vec=1024", base});
    QueryOptions o = base;
    o.compaction = CompactionMode::kAlways;
    tw.push_back({"compaction=always", o});
    for (int denom : {16, 64, 256}) {
      o = base;
      o.compaction = CompactionMode::kAdaptive;
      o.compaction_threshold = 1.0 / denom;
      tw.push_back({"compaction=adaptive(1/" + std::to_string(denom) + ")",
                    o});
    }
    for (size_t vec : {size_t{256}, size_t{2048}}) {
      o = base;
      o.vector_size = vec;
      tw.push_back({"vec=" + std::to_string(vec), o});
    }
  }
  const std::vector<std::pair<std::string, std::string>> selectivities =
      quick ? std::vector<std::pair<std::string, std::string>>{
                  {"mid", "1994-12-31"}}
            : std::vector<std::pair<std::string, std::string>>{
                  {"low", "1994-01-31"},
                  {"mid", "1994-12-31"},
                  {"high", "1998-12-31"}};

  benchutil::Table table(
      {"cell", "config", "ms", "vs best static", "note"});
  for (double sf : sfs) {
    runtime::Database db = datagen::GenerateTpch(sf);
    Session session(db);
    for (const auto& [name, shipdate_hi] : selectivities) {
      const std::string cell =
          "TW Q6 sf=" + benchutil::Fmt(sf, 2) + " sel=" + name;
      const std::string hi = shipdate_hi;
      worst_ratio = std::max(
          worst_ratio,
          RunCell(
              session, Engine::kTectorwise, Query::kQ6, tw, reps,
              [&hi](PreparedQuery& q) { q.Set("shipdate_hi", hi); }, cell,
              table, identical));
    }

    // --- Typer Q9: build mode × ROF × block size across scale factors ------
    // The staged-probe payoff grows with the hash tables' working set, so
    // the best arm flips between fused and ROF as SF scales.
    std::vector<StaticVariant> ty;
    {
      QueryOptions base;
      base.threads = 1;
      for (BuildMode bm : {BuildMode::kPartitioned, BuildMode::kCas}) {
        const std::string bml =
            bm == BuildMode::kCas ? "cas" : "partitioned";
        QueryOptions o = base;
        o.build_mode = bm;
        ty.push_back({"fused build=" + bml, o});
        for (size_t block : {size_t{128}, size_t{512}, size_t{1024}}) {
          o.rof = true;
          o.rof_block = block;
          ty.push_back(
              {"rof(" + std::to_string(block) + ") build=" + bml, o});
        }
      }
    }
    const std::string cell = "Typer Q9 sf=" + benchutil::Fmt(sf, 2);
    worst_ratio =
        std::max(worst_ratio,
                 RunCell(session, Engine::kTyper, Query::kQ9, ty, reps,
                         [](PreparedQuery&) {}, cell, table, identical));
  }
  table.Print();

  std::printf(
      "\nresults byte-identical across all arms/executions: %s\n"
      "worst learned-vs-best-static ratio: %.2fx (target <= 1.05x)%s\n",
      identical ? "yes" : "NO — see stderr", worst_ratio,
      reps < 3 ? " [reps<3: medians are noise-dominated, raise VCQ_REPS]"
               : "");
  std::printf(
      "paper shape: no single static arm wins every cell; the learned "
      "configuration tracks the per-cell winner without hand-tuning "
      "(Sec. 9.1's self-adapting engine argument).\n");
  return identical ? 0 : 1;
}
