// Figure 12 (substitution, DESIGN.md #4): the paper's Knights Landing
// column shows a SIMD-heavy platform; without that hardware we keep the
// experiment's SIMD dimension by scaling Tectorwise with AVX-512 primitives
// on and off across core counts, next to Typer.

#include <cstdio>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "tectorwise/primitives_simd.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(2);
  const size_t hw = benchutil::EnvThreads(0);

  benchutil::PrintHeader(
      "Figure 12: SIMD on/off scaling (Knights Landing substitution)",
      "SF=100, Skylake vs KNL vs KNL+SIMD; queries/s vs % cores",
      "SF=" + benchutil::Fmt(sf, 2) + ", TW scalar vs TW AVX-512 vs Typer" +
          (tectorwise::simd::Available() ? "" :
           " (AVX-512 unavailable: SIMD column = scalar)"));

  runtime::Database db = datagen::GenerateTpch(sf);
  std::vector<size_t> counts;
  for (size_t t = 1; t < hw; t *= 2) counts.push_back(t);
  counts.push_back(hw);
  if (benchutil::Quick()) counts = {1, 2};

  benchutil::Table table({"query", "threads", "Typer q/s", "TW q/s",
                          "TW+SIMD q/s", "SIMD gain"});
  for (Query q : TpchQueries()) {
    for (const size_t t : counts) {
      runtime::QueryOptions opt;
      opt.threads = t;
      const auto typer =
          benchutil::MeasureQuery(db, Engine::kTyper, q, opt, reps);
      const auto tw =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
      opt.simd = true;
      const auto tw_simd =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
      table.AddRow({QueryName(q), std::to_string(t),
                    benchutil::Fmt(1000.0 / typer.ms, 2),
                    benchutil::Fmt(1000.0 / tw.ms, 2),
                    benchutil::Fmt(1000.0 / tw_simd.ms, 2),
                    benchutil::Fmt(tw.ms / tw_simd.ms, 2)});
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: SIMD helps the selection query (Q6) clearly and the "
      "join/aggregation queries only marginally — memory access, not "
      "computation, bounds them (paper Sec. 5.4).\n");
  return 0;
}
