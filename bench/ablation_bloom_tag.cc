// Ablation (paper §3.2): the hash-table directory embeds a 16-bit
// Bloom-filter tag in each bucket pointer, so "a probe miss usually does
// not have to traverse the collision list" — the design both engines share.
// This bench isolates that choice: tagged vs untagged probing across hit
// rates and table sizes.

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "benchutil/bench.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"

namespace {

using namespace vcq;
using runtime::Hashmap;

struct Entry {
  Hashmap::EntryHeader header;
  int64_t key;
};

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <bool kTagged>
int64_t Probe(const Hashmap& ht, const std::vector<int64_t>& keys) {
  int64_t found = 0;
  for (const int64_t key : keys) {
    const uint64_t h = runtime::HashMurmur2(static_cast<uint64_t>(key));
    auto* e = kTagged ? ht.FindChainTagged(h) : ht.FindChain(h);
    for (; e != nullptr; e = e->next) {
      const auto* te = reinterpret_cast<const Entry*>(e);
      if (e->hash == h && te->key == key) {
        ++found;
        break;
      }
    }
  }
  return found;
}

}  // namespace

int main() {
  const size_t probes = benchutil::Quick() ? 200000 : 4000000;
  benchutil::PrintHeader(
      "Ablation: Bloom-tagged directory pointers (paper Sec. 3.2)",
      "16 pointer bits as a tag filter: probe misses skip the chain",
      std::to_string(probes) + " probes per cell; selective joins are "
                               "where the tag pays off");

  benchutil::Table table({"entries", "hit rate", "tagged ns", "untagged ns",
                          "speedup"});
  std::mt19937_64 rng(41);
  for (const size_t entries : {size_t{1} << 14, size_t{1} << 18,
                               size_t{1} << 22}) {
    Hashmap ht;
    runtime::MemPool pool;
    ht.SetSize(entries);
    for (size_t k = 0; k < entries; ++k) {
      auto* e = pool.Create<Entry>();
      e->header.next = nullptr;
      e->header.hash = runtime::HashMurmur2(k);
      e->key = static_cast<int64_t>(k);
      ht.InsertUnlocked(&e->header);
    }
    for (const int hit_pct : {1, 10, 50, 100}) {
      std::vector<int64_t> keys(probes);
      for (auto& k : keys) {
        const bool hit = static_cast<int>(rng() % 100) < hit_pct;
        k = hit ? static_cast<int64_t>(rng() % entries)
                : static_cast<int64_t>(entries + rng() % (entries * 8));
      }
      double t0 = NowNs();
      volatile int64_t f1 = Probe<true>(ht, keys);
      const double tagged = (NowNs() - t0) / probes;
      t0 = NowNs();
      volatile int64_t f2 = Probe<false>(ht, keys);
      const double untagged = (NowNs() - t0) / probes;
      (void)f1;
      (void)f2;
      table.AddRow({std::to_string(entries), std::to_string(hit_pct) + "%",
                    benchutil::Fmt(tagged, 1), benchutil::Fmt(untagged, 1),
                    benchutil::Fmt(untagged / tagged, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: the tag helps most at low hit rates (selective "
      "joins: most probes filtered without touching the chain) and is "
      "neutral at 100%% hits.\n");
  return 0;
}
