// Figure 8: scalar vs SIMD hash-join probing.
//  (a) hashing alone            (paper: 2.3x)
//  (b) gather instruction       (paper: 1.1x — two loads/cycle either way)
//  (c) TW probe primitive       (paper: 1.4x best case, cache-resident)
//  (d) full TPC-H Q3 and Q9     (paper: ~1.1x — gains vanish)

#include <benchmark/benchmark.h>

#include <immintrin.h>

#include <random>
#include <vector>

#include "api/vcq.h"
#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/hash.h"
#include "runtime/hashmap.h"
#include "runtime/mem_pool.h"
#include "tectorwise/primitives.h"
#include "tectorwise/primitives_simd.h"

namespace {

using namespace vcq;
using runtime::Hashmap;
using tectorwise::pos_t;

constexpr size_t kN = 4096;     // cache-resident batch (best case, paper)
constexpr size_t kTable = 2048;  // small hash table that fits in L1/L2

struct ProbeData {
  std::vector<int64_t> keys;
  std::vector<uint64_t> hashes;
  std::vector<pos_t> pos;
  std::vector<uint64_t> gather_table;
  std::vector<uint32_t> gather_idx;
  std::vector<uint64_t> gather_out;
  Hashmap ht;
  runtime::MemPool pool;
  std::vector<Hashmap::EntryHeader*> cand;
  std::vector<pos_t> cand_pos;

  struct Entry {
    Hashmap::EntryHeader header;
    int64_t key;
  };

  ProbeData()
      : keys(kN),
        hashes(kN),
        pos(kN),
        gather_table(1 << 16),
        gather_idx(kN),
        gather_out(kN),
        cand(kN),
        cand_pos(kN) {
    std::mt19937_64 rng(13);
    for (size_t i = 0; i < kN; ++i) {
      keys[i] = static_cast<int64_t>(rng() % kTable);
      pos[i] = static_cast<pos_t>(i);
      gather_idx[i] = static_cast<uint32_t>(rng() % gather_table.size());
    }
    for (auto& v : gather_table) v = rng();
    ht.SetSize(kTable);
    for (size_t k = 0; k < kTable; ++k) {
      auto* e = pool.Create<Entry>();
      e->header.next = nullptr;
      e->header.hash = runtime::HashMurmur2(k);
      e->key = static_cast<int64_t>(k);
      ht.InsertUnlocked(&e->header);
    }
    tectorwise::HashCompact<int64_t>(kN, nullptr, keys.data(), hashes.data(),
                                     pos.data());
  }
};

ProbeData& Data() {
  static ProbeData data;
  return data;
}

// (a) hashing -----------------------------------------------------------
void BM_HashScalar(benchmark::State& state) {
  ProbeData& d = Data();
  for (auto _ : state) {
    tectorwise::HashCompact<int64_t>(kN, nullptr, d.keys.data(),
                                     d.hashes.data(), d.pos.data());
    benchmark::DoNotOptimize(d.hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_HashScalar);

void BM_HashSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  ProbeData& d = Data();
  for (auto _ : state) {
    tectorwise::simd::HashI64Compact(kN, nullptr, d.keys.data(),
                                     d.hashes.data(), d.pos.data());
    benchmark::DoNotOptimize(d.hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_HashSimd);

// (b) raw gathers --------------------------------------------------------
void BM_GatherScalar(benchmark::State& state) {
  ProbeData& d = Data();
  for (auto _ : state) {
    for (size_t i = 0; i < kN; ++i)
      d.gather_out[i] = d.gather_table[d.gather_idx[i]];
    benchmark::DoNotOptimize(d.gather_out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_GatherScalar);

__attribute__((target("avx512f"))) void GatherKernel(ProbeData& d) {
  for (size_t i = 0; i + 8 <= kN; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(d.gather_idx.data() + i));
    const __m512i v =
        _mm512_i32gather_epi64(idx, d.gather_table.data(), 8);
    _mm512_storeu_si512(d.gather_out.data() + i, v);
  }
}

void BM_GatherSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  ProbeData& d = Data();
  for (auto _ : state) {
    GatherKernel(d);
    benchmark::DoNotOptimize(d.gather_out.data());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_GatherSimd);

// (c) TW probe primitive (findCandidates) ---------------------------------
void BM_ProbeScalar(benchmark::State& state) {
  ProbeData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::JoinCandidates(
        kN, d.hashes.data(), d.pos.data(), d.ht, d.cand.data(),
        d.cand_pos.data()));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_ProbeScalar);

void BM_ProbeSimd(benchmark::State& state) {
  if (!tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  ProbeData& d = Data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tectorwise::simd::JoinCandidates(
        kN, d.hashes.data(), d.pos.data(), d.ht, d.cand.data(),
        d.cand_pos.data()));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_ProbeSimd);

// (d) full join queries ---------------------------------------------------
const runtime::Database& Db() {
  static const runtime::Database* db =
      new runtime::Database(datagen::GenerateTpch(benchutil::EnvSf(1.0)));
  return *db;
}

void RunJoinQuery(benchmark::State& state, Query q, bool simd) {
  if (simd && !tectorwise::simd::Available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  const runtime::Database& db = Db();
  runtime::QueryOptions opt;
  opt.simd = simd;
  for (auto _ : state) RunQuery(db, Engine::kTectorwise, q, opt);
}

void BM_Q3Scalar(benchmark::State& s) { RunJoinQuery(s, Query::kQ3, false); }
void BM_Q3Simd(benchmark::State& s) { RunJoinQuery(s, Query::kQ3, true); }
void BM_Q9Scalar(benchmark::State& s) { RunJoinQuery(s, Query::kQ9, false); }
void BM_Q9Simd(benchmark::State& s) { RunJoinQuery(s, Query::kQ9, true); }
BENCHMARK(BM_Q3Scalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q3Simd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q9Scalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q9Simd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vcq::benchutil::PrintHeader(
      "Figure 8: scalar vs SIMD join probing",
      "(a) hashing 2.3x  (b) gather 1.1x  (c) probe 1.4x  (d) queries ~1.1x",
      "compare the Scalar/Simd pairs' rates / times");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
