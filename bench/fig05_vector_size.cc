// Figure 5: Tectorwise runtime vs vector size, normalized to the 1K-tuple
// default. Paper: sizes 1 (Volcano-like interpretation overhead) through
// full materialization (cache-busting); ~1K is the sweet spot.

#include <cstdio>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"

int main() {
  using namespace vcq;
  const double sf = benchutil::EnvSf(1.0);
  const int reps = benchutil::EnvReps(2);
  benchutil::PrintHeader(
      "Figure 5: Tectorwise vector size sweep (times normalized to 1K)",
      "SF=1, 1 thread, vector sizes 1 .. full materialization",
      "SF=" + benchutil::Fmt(sf, 2));

  runtime::Database db = datagen::GenerateTpch(sf);
  const size_t max_size = db["lineitem"].tuple_count();
  std::vector<size_t> sizes = {1, 16, 256, 1024, 4096, 65536, 1 << 20,
                               max_size};
  if (benchutil::Quick()) sizes = {16, 1024, max_size};

  // Baseline at 1K.
  std::vector<double> base(TpchQueries().size());
  {
    runtime::QueryOptions opt;
    opt.threads = 1;
    opt.vector_size = 1024;
    size_t qi = 0;
    for (Query q : TpchQueries())
      base[qi++] =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps).ms;
  }

  benchutil::Table table(
      {"vecsize", "q1", "q6", "q3", "q9", "q18", "(rel. to 1K)"});
  for (const size_t vs : sizes) {
    runtime::QueryOptions opt;
    opt.threads = 1;
    opt.vector_size = vs;
    // Full materialization also needs morsels that span the table.
    opt.morsel_grain = std::max(opt.morsel_grain, vs);
    std::vector<std::string> row = {std::to_string(vs)};
    size_t qi = 0;
    for (Query q : TpchQueries()) {
      const auto m =
          benchutil::MeasureQuery(db, Engine::kTectorwise, q, opt, reps);
      row.push_back(benchutil::Fmt(m.ms / base[qi++], 2));
    }
    row.push_back("x");
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\npaper shape: <64 and >64K are significantly slower; ~1K is good "
      "for all queries (Q3 tolerates 64K).\n");
  return 0;
}
