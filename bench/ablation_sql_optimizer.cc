// Ablation: the SQL optimizer's two plan-shaping passes — predicate
// pushdown and greedy join ordering (sql/optimizer.h) — on Q3- and
// Q9-shaped statements written with an adversarial FROM order (the fact
// table first, the selective dimension filters last). Four configs
// {off, pushdown only, join order only, both} are compared on three axes:
// the optimizer's own cost estimate (Σ estimated join-output rows), the
// interpreter's measured intermediate-tuple count (sql/lower.h
// VolcanoStats — ground truth the estimate is supposed to track), and
// Tectorwise wall time. The acceptance bar for this subsystem is the
// strict reduction of measured intermediate tuples from "off" to "both";
// the bench exits nonzero when a query misses it.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil/bench.h"
#include "datagen/tpch.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "sql/sql.h"

namespace {

using namespace vcq;

struct Config {
  const char* name;
  sql::OptimizerOptions options;
};

struct Workload {
  const char* name;
  const char* text;
};

// Both statements list lineitem first so the unoptimized left-deep plan
// joins the fact table before any filter has a chance to shrink it.
const Workload kWorkloads[] = {
    {"Q3-shaped",
     "SELECT o_orderkey, SUM(l_extendedprice) AS v"
     " FROM lineitem, orders, customer"
     " WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey"
     " AND c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15'"
     " GROUP BY o_orderkey"},
    {"Q9-shaped",
     "SELECT n_name, SUM(l_extendedprice - l_quantity) AS profit"
     " FROM lineitem, partsupp, supplier, nation, part"
     " WHERE ps_partkey = l_partkey AND ps_suppkey = l_suppkey"
     " AND s_suppkey = l_suppkey AND n_nationkey = s_nationkey"
     " AND p_partkey = l_partkey AND p_name LIKE '%green%'"
     " GROUP BY n_name"},
};

}  // namespace

int main() {
  const double sf = benchutil::EnvSf(0.2);
  const int reps = benchutil::EnvReps(3);
  const size_t threads = benchutil::EnvThreads(4);

  std::printf("SQL optimizer ablation — TPC-H SF=%.2f, tectorwise x%zu, "
              "%d reps\n",
              sf, threads, reps);
  const runtime::Database db = datagen::GenerateTpch(sf);
  const auto catalog = sql::MakeCatalog(db);

  const Config configs[] = {
      {"off", {.fold_constants = true, .pushdown = false, .join_order = false}},
      {"pushdown", {.fold_constants = true, .pushdown = true,
                    .join_order = false}},
      {"join-order", {.fold_constants = true, .pushdown = false,
                      .join_order = true}},
      {"both", {.fold_constants = true, .pushdown = true, .join_order = true}},
  };

  runtime::QueryOptions tw_opt;
  tw_opt.threads = threads;
  const runtime::QueryOptions volcano_opt;
  const runtime::QueryParams no_params;

  bool strict_reduction = true;
  for (const Workload& w : kWorkloads) {
    std::printf("\n=== %s ===\n%s\n", w.name, w.text);
    std::printf("  %-11s %14s %18s %10s\n", "config", "est. cost",
                "measured interm.", "tw ms");
    uint64_t off_tuples = 0;
    uint64_t both_tuples = 0;
    for (const Config& c : configs) {
      const sql::CompileResult compiled =
          sql::Compile(catalog, w.text, c.options);
      if (!compiled.ok()) {
        std::fprintf(stderr, "compile failed under %s: %s\n", c.name,
                     compiled.error->Format().c_str());
        return 1;
      }
      sql::VolcanoStats stats;
      compiled.query->RunVolcano(volcano_opt, no_params, &stats);
      const benchutil::Measurement m = benchutil::Measure(
          [&] { compiled.query->LowerTectorwise().Run(tw_opt, no_params); },
          reps);
      std::printf("  %-11s %14.0f %18llu %10.2f\n", c.name,
                  compiled.query->cost(),
                  static_cast<unsigned long long>(stats.intermediate_tuples),
                  m.ms);
      if (!std::strcmp(c.name, "off")) off_tuples = stats.intermediate_tuples;
      if (!std::strcmp(c.name, "both"))
        both_tuples = stats.intermediate_tuples;
    }
    if (both_tuples >= off_tuples) {
      std::fprintf(stderr,
                   "%s: full optimizer did not reduce intermediate tuples "
                   "(%llu -> %llu)\n",
                   w.name, static_cast<unsigned long long>(off_tuples),
                   static_cast<unsigned long long>(both_tuples));
      strict_reduction = false;
    }
  }
  if (!strict_reduction) return 1;
  std::printf("\nfull optimizer strictly reduced measured intermediate "
              "tuples on every workload\n");
  return 0;
}
