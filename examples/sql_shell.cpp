// SQL shell: an interactive front end for the sql/ subsystem. Type a
// SELECT statement and it is compiled (lexer → parser → binder →
// optimizer), lowered onto Tectorwise, executed, and printed; malformed
// SQL gets a caret-positioned diagnostic instead of a crash (the shell
// uses sql::Compile's recoverable error path, not Session::PrepareSql's
// check-failing one).
//
//   ./sql_shell [--sf 0.1] [--ssb] [--threads N]
//
// Commands:
//   SELECT ...            compile and run on Tectorwise
//   EXPLAIN SELECT ...    print every compilation stage instead of running
//   EXPLAIN ANALYZE SELECT ...
//                         run once with tracing on and print the measured
//                         plan (per node: rows, batches, self time,
//                         ns/tuple, density — tectorwise/plan.h)
//   \set <name> <value>   bind $<name> for subsequent queries (integer if
//                         the value parses as one, string otherwise)
//   \timing on|off        print wall time after every query (off default)
//   \metrics              process-wide metrics snapshot (runtime/metrics.h)
//   \tables               list tables and columns with their SQL types
//   \q                    quit

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/metrics.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "runtime/trace.h"
#include "sql/sql.h"
#include "tectorwise/plan.h"

namespace {

// Reprints the offending source line with a caret under the error column.
void PrintError(const std::string& text, const vcq::sql::SqlError& err) {
  std::fprintf(stderr, "%s\n", err.Format().c_str());
  size_t start = 0;
  for (int line = 1; line < err.line; ++line) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) return;
    start = nl + 1;
  }
  const size_t end = text.find('\n', start);
  const std::string line = text.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  std::fprintf(stderr, "  %s\n  %*s^\n", line.c_str(), err.col - 1, "");
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  *out = std::strtoll(s.c_str(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.1;
  bool ssb = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--sf") && i + 1 < argc) sf = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--ssb")) ssb = true;
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
  }

  std::printf("Loading %s SF=%.2f ...\n", ssb ? "SSB" : "TPC-H", sf);
  const vcq::runtime::Database db = ssb ? vcq::datagen::GenerateSsb(sf)
                                        : vcq::datagen::GenerateTpch(sf);
  // One catalog for the whole session: statistics are scanned once.
  const auto catalog = vcq::sql::MakeCatalog(db);
  vcq::runtime::QueryOptions opt;
  opt.threads = threads;
  vcq::runtime::QueryParams params;
  bool timing = false;

  std::printf("sql shell — \\tables lists the schema, \\q quits.\n");
  std::string line;
  while (true) {
    std::printf("sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    while (!line.empty() && (line.back() == ';' || line.back() == ' '))
      line.pop_back();
    if (line.empty()) continue;
    if (line == "\\q" || line == "quit" || line == "exit") break;

    if (line == "\\tables") {
      for (const vcq::sql::TableDef& t : catalog->tables()) {
        std::printf("%s (%zu rows)\n", t.name.c_str(), t.tuple_count);
        for (const vcq::sql::ColumnDef& c : t.columns)
          std::printf("  %-20s %s\n", c.name.c_str(),
                      vcq::sql::TypeName(c.type).c_str());
      }
      continue;
    }
    if (line == "\\metrics") {
      std::printf("%s\n", vcq::metrics::RenderJson().c_str());
      continue;
    }
    if (line.rfind("\\timing", 0) == 0) {
      const std::string arg = line.size() > 8 ? line.substr(8) : "";
      if (arg == "on") {
        timing = true;
      } else if (arg == "off") {
        timing = false;
      } else {
        timing = !timing;
      }
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }
    if (line.rfind("\\set ", 0) == 0) {
      const size_t sp = line.find(' ', 5);
      if (sp == std::string::npos) {
        std::fprintf(stderr, "usage: \\set <name> <value>\n");
        continue;
      }
      const std::string name = line.substr(5, sp - 5);
      const std::string value = line.substr(sp + 1);
      int64_t iv;
      if (ParseInt(value, &iv)) {
        params.SetInt(name, iv);
        std::printf("$%s = %lld\n", name.c_str(), static_cast<long long>(iv));
      } else {
        params.SetString(name, value);
        std::printf("$%s = '%s'\n", name.c_str(), value.c_str());
      }
      continue;
    }

    bool explain = false;
    bool analyze = false;
    std::string text = line;
    if (text.size() >= 8 && (std::strncmp(text.c_str(), "EXPLAIN ", 8) == 0 ||
                             std::strncmp(text.c_str(), "explain ", 8) == 0)) {
      explain = true;
      text = text.substr(8);
      if (text.size() >= 8 &&
          (std::strncmp(text.c_str(), "ANALYZE ", 8) == 0 ||
           std::strncmp(text.c_str(), "analyze ", 8) == 0)) {
        explain = false;
        analyze = true;
        text = text.substr(8);
      }
    }

    const vcq::sql::CompileResult compiled =
        vcq::sql::Compile(catalog, text);
    if (!compiled.ok()) {
      PrintError(text, *compiled.error);
      continue;
    }
    if (explain) {
      std::printf("%s", vcq::sql::Explain(*compiled.query).c_str());
      continue;
    }
    if (analyze) {
      // One traced execution, then the measured plan tree — the shell
      // drives the engine directly (no Session), so it hands its own
      // span sink in through the options.
      const vcq::tectorwise::Prepared prepared =
          compiled.query->LowerTectorwise();
      vcq::runtime::QueryTrace trace;
      vcq::runtime::QueryOptions traced = opt;
      traced.trace = vcq::runtime::TraceLevel::kSpans;
      traced.trace_sink = &trace;
      traced.telemetry = &trace.node_telemetry();
      const auto start = std::chrono::steady_clock::now();
      const vcq::runtime::QueryResult result = prepared.Run(traced, params);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      std::printf("EXPLAIN ANALYZE (tectorwise): wall=%.2fms rows=%zu\n%s",
                  ms, result.rows.size(),
                  vcq::tectorwise::ExplainAnalyzeTree(prepared.plan(), trace,
                                                      traced.vector_size)
                      .c_str());
      continue;
    }

    const auto start = std::chrono::steady_clock::now();
    const vcq::runtime::QueryResult result =
        compiled.query->LowerTectorwise().Run(opt, params);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::printf("%s", result.ToString(40).c_str());
    std::printf("(%zu rows, %.2f ms, %u thread%s)\n", result.rows.size(), ms,
                threads, threads == 1 ? "" : "s");
    if (timing) std::printf("Time: %.3f ms\n", ms);
  }
  return 0;
}
