// Quickstart: generate a small TPC-H instance, open a Session, prepare one
// query per engine, and compare results and timings — including what
// prepare-once buys on repeated execution (paper §8.1).
//
//   ./quickstart [scale_factor] [threads]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/session.h"
#include "api/vcq.h"
#include "datagen/tpch.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.1;
  const size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;

  std::printf("Generating TPC-H scale factor %.2f ...\n", sf);
  vcq::runtime::Database db = vcq::datagen::GenerateTpch(sf);
  std::printf("Database size: %.1f MB\n",
              static_cast<double>(db.byte_size()) / (1 << 20));

  // A Session owns the database reference and the worker pool; prepare a
  // query once, then execute it as often as you like.
  vcq::Session session(db);
  vcq::runtime::QueryOptions opt;
  opt.threads = threads;

  for (vcq::Engine engine :
       {vcq::Engine::kTyper, vcq::Engine::kTectorwise, vcq::Engine::kVolcano}) {
    auto start = std::chrono::steady_clock::now();
    vcq::PreparedQuery q6 = session.Prepare(engine, vcq::Query::kQ6, opt);
    const double prepare_ms = MsSince(start);

    start = std::chrono::steady_clock::now();
    vcq::runtime::QueryResult result = q6.Execute();
    const double first_ms = MsSince(start);

    start = std::chrono::steady_clock::now();
    q6.Execute();
    const double warm_ms = MsSince(start);

    std::printf(
        "\n=== %s, TPC-H Q6, %zu thread(s): prepare %.2f ms, execute %.2f "
        "ms, re-execute %.2f ms ===\n",
        vcq::EngineName(engine), threads, prepare_ms, first_ms, warm_ms);
    std::printf("%s", result.ToString().c_str());
  }

  // The one-shot compatibility wrapper still works (prepares a temporary
  // session-backed query with default bindings and runs it once).
  const auto start = std::chrono::steady_clock::now();
  vcq::runtime::QueryResult compat =
      vcq::RunQuery(db, vcq::Engine::kTyper, vcq::Query::kQ6, opt);
  std::printf("\n=== RunQuery compatibility wrapper: %.2f ms ===\n",
              MsSince(start));
  std::printf("%s", compat.ToString().c_str());
  return 0;
}
