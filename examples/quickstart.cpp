// Quickstart: generate a small TPC-H instance, run one query on all three
// engines, and compare results and timings.
//
//   ./quickstart [scale_factor] [threads]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/vcq.h"
#include "datagen/tpch.h"

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.1;
  const size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;

  std::printf("Generating TPC-H scale factor %.2f ...\n", sf);
  vcq::runtime::Database db = vcq::datagen::GenerateTpch(sf);
  std::printf("Database size: %.1f MB\n",
              static_cast<double>(db.byte_size()) / (1 << 20));

  vcq::runtime::QueryOptions opt;
  opt.threads = threads;

  for (vcq::Engine engine :
       {vcq::Engine::kTyper, vcq::Engine::kTectorwise, vcq::Engine::kVolcano}) {
    const auto start = std::chrono::steady_clock::now();
    vcq::runtime::QueryResult result =
        vcq::RunQuery(db, engine, vcq::Query::kQ6, opt);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    std::printf("\n=== %s, TPC-H Q6, %zu thread(s): %.2f ms ===\n",
                vcq::EngineName(engine), threads, ms);
    std::printf("%s", result.ToString().c_str());
  }
  return 0;
}
