// Building a custom vectorized query plan against your own data with the
// library's operator toolkit — the extension path a downstream user takes
// when their query is not one of the built-ins.
//
// Scenario: a web-shop "sessions" fact table. Query:
//
//   SELECT campaign, SUM(revenue), COUNT(*)
//   FROM sessions JOIN campaigns ON sessions.campaign_id = campaigns.id
//   WHERE sessions.duration_s BETWEEN 30 AND 600
//     AND campaigns.active = 1
//   GROUP BY campaign
//
// wired as Scan -> Select -> HashJoin -> HashGroup, morsel-parallel.

#include <cstdio>
#include <mutex>
#include <random>
#include <vector>

#include "runtime/relation.h"
#include "runtime/worker_pool.h"
#include "tectorwise/hash_group.h"
#include "tectorwise/hash_join.h"
#include "tectorwise/steps.h"

using namespace vcq;
using runtime::Char;
using tectorwise::CmpOp;
using tectorwise::ExecContext;
using tectorwise::Get;
using tectorwise::HashGroup;
using tectorwise::HashJoin;
using tectorwise::kEndOfStream;
using tectorwise::Scan;
using tectorwise::Select;
using tectorwise::Slot;

int main() {
  // --- 1. Build the data (normally you would load it) ----------------------
  constexpr size_t kSessions = 2'000'000;
  constexpr size_t kCampaigns = 500;
  runtime::Relation sessions;
  {
    auto campaign_id = sessions.AddColumn<int32_t>("campaign_id", kSessions);
    auto duration = sessions.AddColumn<int64_t>("duration_s", kSessions);
    auto revenue = sessions.AddColumn<int64_t>("revenue", kSessions);  // cents
    std::mt19937_64 rng(99);
    for (size_t i = 0; i < kSessions; ++i) {
      campaign_id[i] = static_cast<int32_t>(rng() % kCampaigns) + 1;
      duration[i] = static_cast<int64_t>(rng() % 1200);
      revenue[i] = static_cast<int64_t>(rng() % 20000);
    }
  }
  runtime::Relation campaigns;
  {
    auto id = campaigns.AddColumn<int32_t>("id", kCampaigns);
    auto name = campaigns.AddColumn<Char<16>>("name", kCampaigns);
    auto active = campaigns.AddColumn<int32_t>("active", kCampaigns);
    for (size_t i = 0; i < kCampaigns; ++i) {
      id[i] = static_cast<int32_t>(i) + 1;
      char buf[17];
      std::snprintf(buf, sizeof(buf), "campaign-%04zu", i + 1);
      name[i] = Char<16>::From(buf);
      active[i] = (i % 3 == 0) ? 1 : 0;
    }
  }

  // --- 2. Shared state: one per pipeline-breaking structure ---------------
  const size_t threads = 8;
  ExecContext ctx;  // vector_size = 1024, scalar primitives
  Scan::Shared scan_sessions(sessions.tuple_count());
  Scan::Shared scan_campaigns(campaigns.tuple_count());
  HashJoin::Shared join_shared(threads);
  HashGroup::Shared group_shared(threads);

  // --- 3. Per-worker plans + a collector ----------------------------------
  struct ResultRow {
    Char<16> name;
    int64_t revenue, count;
  };
  std::vector<ResultRow> rows;
  std::mutex mu;
  std::vector<std::unique_ptr<tectorwise::Operator>> roots(threads);

  runtime::WorkerPool::Global().Run(threads, [&](size_t wid) {
    // Build side: active campaigns.
    auto cscan = std::make_unique<Scan>(&scan_campaigns, &campaigns,
                                        ctx.vector_size);
    Slot* c_id = cscan->AddColumn<int32_t>("id");
    Slot* c_name = cscan->AddColumn<Char<16>>("name");
    Slot* c_active = cscan->AddColumn<int32_t>("active");
    auto csel = std::make_unique<Select>(std::move(cscan), ctx.vector_size);
    csel->AddStep(tectorwise::MakeSelCmp<int32_t>(ctx, c_active, CmpOp::kEq,
                                                  1));

    // Probe side: sessions with plausible durations.
    auto sscan = std::make_unique<Scan>(&scan_sessions, &sessions,
                                        ctx.vector_size);
    Slot* s_campaign = sscan->AddColumn<int32_t>("campaign_id");
    Slot* s_duration = sscan->AddColumn<int64_t>("duration_s");
    Slot* s_revenue = sscan->AddColumn<int64_t>("revenue");
    auto ssel = std::make_unique<Select>(std::move(sscan), ctx.vector_size);
    ssel->AddStep(
        tectorwise::MakeSelBetween<int64_t>(ctx, s_duration, 30, 600));

    auto join = std::make_unique<HashJoin>(&join_shared, std::move(csel),
                                           std::move(ssel), ctx);
    const size_t f_id = join->AddBuildField<int32_t>(c_id);
    const size_t f_name = join->AddBuildField<Char<16>>(c_name);
    join->SetBuildHash(tectorwise::MakeHash<int32_t>(ctx, c_id));
    join->SetProbeHash(tectorwise::MakeHash<int32_t>(ctx, s_campaign));
    join->AddKeyCompare<int32_t>(s_campaign, f_id);
    Slot* j_name = join->AddBuildOutput<Char<16>>(f_name);
    Slot* j_revenue = join->AddProbeOutput<int64_t>(s_revenue);

    auto group = std::make_unique<HashGroup>(&group_shared, wid, threads,
                                             std::move(join), ctx);
    const size_t k_name = group->AddKey<Char<16>>(j_name);
    const size_t a_rev = group->AddSumAgg(j_revenue);
    const size_t a_cnt = group->AddCountAgg();
    Slot* g_name = group->AddOutput<Char<16>>(k_name);
    Slot* g_rev = group->AddOutput<int64_t>(a_rev);
    Slot* g_cnt = group->AddOutput<int64_t>(a_cnt);

    size_t n;
    while ((n = group->Next()) != kEndOfStream) {
      std::lock_guard<std::mutex> lock(mu);
      for (size_t k = 0; k < n; ++k) {
        rows.push_back(ResultRow{Get<Char<16>>(g_name)[k],
                                 Get<int64_t>(g_rev)[k],
                                 Get<int64_t>(g_cnt)[k]});
      }
    }
    roots[wid] = std::move(group);
  });
  roots.clear();

  // --- 4. Present ---------------------------------------------------------
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.revenue > b.revenue;
  });
  std::printf("top campaigns by revenue (of %zu active):\n", rows.size());
  for (size_t i = 0; i < std::min<size_t>(10, rows.size()); ++i) {
    std::printf("  %-16s  %10.2f EUR  %8lld sessions\n",
                std::string(rows[i].name.View()).c_str(),
                static_cast<double>(rows[i].revenue) / 100.0,
                static_cast<long long>(rows[i].count));
  }
  return 0;
}
