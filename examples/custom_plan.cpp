// Building a custom vectorized query plan against your own data with the
// declarative plan builder (tectorwise/plan.h) — the extension path a
// downstream user takes when their query is not one of the built-ins.
//
// Scenario: a web-shop "sessions" fact table. Query:
//
//   SELECT campaign, SUM(revenue), COUNT(*)
//   FROM sessions JOIN campaigns ON sessions.campaign_id = campaigns.id
//   WHERE sessions.duration_s BETWEEN 30 AND 600
//     AND campaigns.active = 1
//   GROUP BY campaign
//
// described as Scan -> Select -> HashJoin -> HashGroup. The builder wires
// the per-worker operator trees, the shared state (morsel queues, hash
// table, barriers) and the collector loop, and derives the batch-compaction
// registrations from slot usage — note the absence of any CompactColumn
// call even though adaptive compaction is enabled below.

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "runtime/relation.h"
#include "tectorwise/plan.h"

using namespace vcq;
using runtime::Char;
using tectorwise::CmpOp;
using tectorwise::ColumnRef;
using tectorwise::Plan;
using tectorwise::PlanBuilder;

int main() {
  // --- 1. Build the data (normally you would load it) ----------------------
  constexpr size_t kSessions = 2'000'000;
  constexpr size_t kCampaigns = 500;
  runtime::Relation sessions;
  {
    auto campaign_id = sessions.AddColumn<int32_t>("campaign_id", kSessions);
    auto duration = sessions.AddColumn<int64_t>("duration_s", kSessions);
    auto revenue = sessions.AddColumn<int64_t>("revenue", kSessions);  // cents
    std::mt19937_64 rng(99);
    for (size_t i = 0; i < kSessions; ++i) {
      campaign_id[i] = static_cast<int32_t>(rng() % kCampaigns) + 1;
      duration[i] = static_cast<int64_t>(rng() % 1200);
      revenue[i] = static_cast<int64_t>(rng() % 20000);
    }
  }
  runtime::Relation campaigns;
  {
    auto id = campaigns.AddColumn<int32_t>("id", kCampaigns);
    auto name = campaigns.AddColumn<Char<16>>("name", kCampaigns);
    auto active = campaigns.AddColumn<int32_t>("active", kCampaigns);
    for (size_t i = 0; i < kCampaigns; ++i) {
      id[i] = static_cast<int32_t>(i) + 1;
      char buf[17];
      std::snprintf(buf, sizeof(buf), "campaign-%04zu", i + 1);
      name[i] = Char<16>::From(buf);
      active[i] = (i % 3 == 0) ? 1 : 0;
    }
  }

  // --- 2. Describe the plan ------------------------------------------------
  PlanBuilder pb("campaign-report");

  // Build side: active campaigns.
  auto& cscan = pb.Scan(campaigns, "campaigns");
  const ColumnRef c_id = cscan.Col<int32_t>("id");
  const ColumnRef c_name = cscan.Col<Char<16>>("name");
  const ColumnRef c_active = cscan.Col<int32_t>("active");
  auto& csel = pb.Select(cscan);
  csel.Cmp<int32_t>(c_active, CmpOp::kEq, 1);

  // Probe side: sessions with plausible durations.
  auto& sscan = pb.Scan(sessions, "sessions");
  const ColumnRef s_campaign = sscan.Col<int32_t>("campaign_id");
  const ColumnRef s_duration = sscan.Col<int64_t>("duration_s");
  const ColumnRef s_revenue = sscan.Col<int64_t>("revenue");
  auto& ssel = pb.Select(sscan);
  ssel.Between<int64_t>(s_duration, 30, 600);

  auto& join = pb.HashJoin(csel, ssel);
  join.Key<int32_t>(s_campaign, c_id);
  const ColumnRef j_name = join.Build<Char<16>>(c_name);
  const ColumnRef j_revenue = join.Probe<int64_t>(s_revenue);

  auto& group = pb.HashGroup(join);
  const ColumnRef g_name = group.Key<Char<16>>(j_name);
  const ColumnRef g_rev = group.Sum(j_revenue);
  const ColumnRef g_cnt = group.Count();

  Plan plan = pb.Build(group, {g_name, g_rev, g_cnt});
  std::printf("%s\n", plan.ToString().c_str());

  // --- 3. Run it: 8 workers, adaptive batch compaction ---------------------
  runtime::QueryOptions opt;
  opt.threads = 8;
  opt.compaction = runtime::CompactionMode::kAdaptive;

  struct ResultRow {
    Char<16> name;
    int64_t revenue, count;
  };
  std::vector<ResultRow> rows;
  plan.Run(opt, [&](const Plan::Batch& b) {
    for (size_t k = 0; k < b.size(); ++k) {
      rows.push_back(ResultRow{b.Column<Char<16>>(g_name)[k],
                               b.Column<int64_t>(g_rev)[k],
                               b.Column<int64_t>(g_cnt)[k]});
    }
  });

  // --- 4. Present ---------------------------------------------------------
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.revenue > b.revenue;
  });
  std::printf("top campaigns by revenue (of %zu active):\n", rows.size());
  for (size_t i = 0; i < std::min<size_t>(10, rows.size()); ++i) {
    std::printf("  %-16s  %10.2f EUR  %8lld sessions\n",
                std::string(rows[i].name.View()).c_str(),
                static_cast<double>(rows[i].revenue) / 100.0,
                static_cast<long long>(rows[i].count));
  }
  return 0;
}
