// Pricing & shipping-priority report: the business scenario behind TPC-H
// Q1 (pricing summary) and Q3 (unshipped-order priorities), served from a
// warm vcq::Session on the engine of your choice.
//
//   ./pricing_report [--engine typer|tectorwise|volcano] [--sf 0.5]
//                    [--threads N]
//
// Demonstrates: the Session lifecycle (prepare once, execute many),
// parameter binding on a prepared handle (the Q3 report is re-run for a
// second market segment without rebuilding the plan), and how the paper's
// two paradigms produce identical answers from very different code.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "api/session.h"
#include "api/vcq.h"
#include "datagen/tpch.h"

namespace {

vcq::Engine ParseEngine(const std::string& name) {
  if (name == "typer") return vcq::Engine::kTyper;
  if (name == "tectorwise" || name == "tw") return vcq::Engine::kTectorwise;
  if (name == "volcano") return vcq::Engine::kVolcano;
  std::fprintf(stderr, "unknown engine '%s'\n", name.c_str());
  std::exit(1);
}

double RunTimed(const vcq::PreparedQuery& query,
                vcq::runtime::QueryResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = query.Execute();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  vcq::Engine engine = vcq::Engine::kTyper;
  double sf = 0.5;
  vcq::runtime::QueryOptions opt;
  opt.threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--engine") && i + 1 < argc) {
      engine = ParseEngine(argv[++i]);
    } else if (!std::strcmp(argv[i], "--sf") && i + 1 < argc) {
      sf = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      opt.threads = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--engine typer|tectorwise|volcano] "
                   "[--sf F] [--threads N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (engine == vcq::Engine::kVolcano) opt.threads = 1;

  std::printf("Loading TPC-H SF=%.2f ...\n", sf);
  vcq::runtime::Database db = vcq::datagen::GenerateTpch(sf);
  vcq::Session session(db);

  vcq::runtime::QueryResult result;

  vcq::PreparedQuery q1 = session.Prepare(engine, vcq::Query::kQ1, opt);
  double ms = RunTimed(q1, &result);
  std::printf(
      "\n--- Pricing summary (TPC-H Q1) — %s, %zu thread(s), %.1f ms ---\n",
      vcq::EngineName(engine), opt.threads, ms);
  std::printf("%s", result.ToString().c_str());

  vcq::PreparedQuery q3 = session.Prepare(engine, vcq::Query::kQ3, opt);
  ms = RunTimed(q3, &result);
  std::printf(
      "\n--- Top unshipped orders by value (TPC-H Q3, BUILDING) — %.1f ms "
      "---\n",
      ms);
  std::printf("%s", result.ToString().c_str());

  // Same prepared plan, different market segment: parameter binding on the
  // warm handle (Volcano runs defaults only, so skip the rebinding there).
  if (engine != vcq::Engine::kVolcano) {
    q3.Set("segment", "MACHINERY");
    ms = RunTimed(q3, &result);
    std::printf(
        "\n--- Top unshipped orders by value (TPC-H Q3, MACHINERY) — %.1f ms "
        "---\n",
        ms);
    std::printf("%s", result.ToString().c_str());
  }

  vcq::PreparedQuery q18 = session.Prepare(engine, vcq::Query::kQ18, opt);
  ms = RunTimed(q18, &result);
  std::printf("\n--- Large-volume customers (TPC-H Q18) — %.1f ms ---\n", ms);
  std::printf("%s", result.ToString(20).c_str());
  return 0;
}
