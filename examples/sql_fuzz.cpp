// Differential SQL fuzzer: generates seeded random queries inside the
// supported subset (sql/fuzz.h), runs each on Tectorwise and on the
// Volcano oracle, and exits nonzero on the first mismatch — CI runs this
// as a smoke test; longer sweeps are a command-line flag away.
//
//   ./sql_fuzz [--seed 1] [--n 200] [--sf 0.01] [--ssb] [--threads 4] [-v]
//
// Seeds [seed, seed+n) are deterministic for a fixed schema: a failure
// report's seed reproduces the exact query text.

#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/options.h"
#include "runtime/params.h"
#include "sql/fuzz.h"
#include "sql/sql.h"

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int n = 200;
  double sf = 0.01;
  bool ssb = false;
  unsigned threads = 4;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    if (!std::strcmp(argv[i], "--n") && i + 1 < argc) n = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--sf") && i + 1 < argc) sf = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--ssb")) ssb = true;
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    if (!std::strcmp(argv[i], "-v")) verbose = true;
  }

  std::printf("sql_fuzz: %s SF=%.2f, seeds [%llu, %llu), tectorwise x%u vs "
              "volcano\n",
              ssb ? "SSB" : "TPC-H", sf, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + n), threads);
  const vcq::runtime::Database db = ssb ? vcq::datagen::GenerateSsb(sf)
                                        : vcq::datagen::GenerateTpch(sf);
  const auto catalog = vcq::sql::MakeCatalog(db);

  vcq::runtime::QueryOptions tw_opt;
  tw_opt.threads = threads;
  const vcq::runtime::QueryOptions volcano_opt;
  const vcq::runtime::QueryParams no_params;

  int mismatches = 0;
  for (uint64_t s = seed; s < seed + static_cast<uint64_t>(n); ++s) {
    const std::string text = vcq::sql::GenerateFuzzQuery(*catalog, s);
    if (verbose) std::printf("-- seed %llu\n%s\n",
                             static_cast<unsigned long long>(s), text.c_str());
    const vcq::sql::CompileResult compiled = vcq::sql::Compile(catalog, text);
    if (!compiled.ok()) {
      // Generated queries compile by construction — a reject is a bug.
      std::fprintf(stderr, "seed %llu FAILED to compile:\n%s\n%s\n",
                   static_cast<unsigned long long>(s), text.c_str(),
                   compiled.error->Format().c_str());
      ++mismatches;
      continue;
    }
    const vcq::runtime::QueryResult tw =
        compiled.query->LowerTectorwise().Run(tw_opt, no_params);
    const vcq::runtime::QueryResult volcano =
        compiled.query->RunVolcano(volcano_opt, no_params);
    if (tw != volcano) {
      std::fprintf(stderr,
                   "seed %llu MISMATCH:\n%s\n-- tectorwise --\n%s"
                   "-- volcano --\n%s",
                   static_cast<unsigned long long>(s), text.c_str(),
                   tw.ToString(10).c_str(), volcano.ToString(10).c_str());
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "sql_fuzz: %d/%d seeds disagreed\n", mismatches, n);
    return 1;
  }
  std::printf("sql_fuzz: %d seeds, zero mismatches\n", n);
  return 0;
}
