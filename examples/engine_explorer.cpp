// Engine explorer: interactively sweep the execution-model knobs the paper
// studies — engine, vector size, SIMD, threads — on any query, and see how
// runtime responds. A hands-on version of Figures 3/5/11 and Table 6's
// taxonomy (Typer = push+compilation, Tectorwise = pull+vectorization,
// Volcano = pull+interpretation).
//
//   ./engine_explorer [--sf 0.5] [--query Q1|Q6|Q3|Q9|Q18|SSB-Q1.1|...]
//                     [--sql "SELECT ..."] [--ssb] [--explain] [--analyze]
//                     [--trace-json <path>] [--metrics]
//
// With no --query it sweeps the full TPC-H subset. --explain additionally
// prints each query's declarative Tectorwise plan (nodes, consumed
// columns, and the compaction registrations derived from slot usage).
// --sql runs the same sweep on an ad-hoc statement through the SQL front
// door (src/sql/) instead of a catalog query — Typer is skipped there
// (its pipelines are ahead-of-time compiled per catalog query); --explain
// then prints every compilation stage (ast/logical/optimized/physical).
//
// Observability flags (runtime/trace.h, runtime/metrics.h):
//   --analyze            run each query once traced on both engines and
//                        print PreparedQuery::ExplainAnalyze()'s measured
//                        plan (per node/pipeline: rows, ns/tuple, ...)
//   --trace-json <path>  write a traced Tectorwise run of the (first)
//                        query as chrome://tracing JSON to <path>
//   --metrics            print the process metrics snapshot (JSON and
//                        Prometheus text) after the sweep

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/query_catalog.h"
#include "api/session.h"
#include "api/vcq.h"
#include "datagen/ssb.h"
#include "datagen/tpch.h"
#include "runtime/metrics.h"
#include "runtime/trace.h"
#include "sql/sql.h"
#include "tectorwise/primitives_simd.h"

namespace {

double Time(const vcq::runtime::Database& db, vcq::Engine e, vcq::Query q,
            const vcq::runtime::QueryOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  vcq::RunQuery(db, e, q, opt);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The --sql path: one ad-hoc statement through the SQL front door, swept
// over the same knobs as the catalog queries (minus Typer).
int ExploreSql(const vcq::runtime::Database& db, const std::string& text,
               bool explain) {
  const vcq::sql::CompileResult compiled = vcq::sql::Compile(db, text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.error->Format().c_str());
    return 1;
  }
  const vcq::sql::CompiledQuery& q = *compiled.query;
  if (!q.params().empty()) {
    std::fprintf(stderr,
                 "--sql statements must not declare $parameters here; "
                 "inline the constants (or use the sql_shell \\set flow)\n");
    return 1;
  }
  if (explain) std::printf("%s", vcq::sql::Explain(q).c_str());

  const vcq::runtime::QueryParams no_params;
  std::printf("  engines (1 thread):\n");
  vcq::runtime::QueryOptions st;
  std::printf("    %-11s %8.2f ms\n", "tectorwise",
              TimeMs([&] { q.LowerTectorwise().Run(st, no_params); }));
  std::printf("    %-11s %8.2f ms\n", "volcano",
              TimeMs([&] { q.RunVolcano(st, no_params); }));

  std::printf("  tectorwise vector sizes:\n");
  for (size_t vs : {size_t{1}, size_t{64}, size_t{1024}, size_t{65536}}) {
    vcq::runtime::QueryOptions opt;
    opt.vector_size = vs;
    std::printf("    %-8zu    %8.2f ms\n", vs,
                TimeMs([&] { q.LowerTectorwise().Run(opt, no_params); }));
  }
  vcq::runtime::QueryOptions mt;
  mt.threads = std::max(1u, std::thread::hardware_concurrency() / 2);
  std::printf("  tectorwise x%-2zu threads:   %8.2f ms\n", mt.threads,
              TimeMs([&] { q.LowerTectorwise().Run(mt, no_params); }));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.5;
  std::string query_name;
  std::string sql_text;
  std::string trace_json_path;
  bool ssb = false;
  bool explain = false;
  bool analyze = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--sf") && i + 1 < argc) sf = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--query") && i + 1 < argc) query_name = argv[++i];
    if (!std::strcmp(argv[i], "--sql") && i + 1 < argc) sql_text = argv[++i];
    if (!std::strcmp(argv[i], "--trace-json") && i + 1 < argc)
      trace_json_path = argv[++i];
    if (!std::strcmp(argv[i], "--ssb")) ssb = true;
    if (!std::strcmp(argv[i], "--explain")) explain = true;
    if (!std::strcmp(argv[i], "--analyze")) analyze = true;
    if (!std::strcmp(argv[i], "--metrics")) metrics = true;
  }

  if (!sql_text.empty()) {
    std::printf("Loading %s SF=%.2f ...\n", ssb ? "SSB" : "TPC-H", sf);
    const vcq::runtime::Database sql_db =
        ssb ? vcq::datagen::GenerateSsb(sf) : vcq::datagen::GenerateTpch(sf);
    std::printf("\n=== SQL — %s ===\n", sql_text.c_str());
    const int rc = ExploreSql(sql_db, sql_text, explain);
    if (metrics && rc == 0) {
      std::printf("\n=== metrics ===\n%s\n%s", vcq::metrics::RenderJson().c_str(),
                  vcq::metrics::RenderPrometheus().c_str());
    }
    return rc;
  }

  // The QueryCatalog is the single registry of the workload: name lookup
  // and the sweep list both come from it (the PR 3 explorer crash came
  // from a hand-rolled duplicate of this list).
  std::vector<vcq::Query> queries;
  if (!query_name.empty()) {
    const vcq::QueryInfo* info = vcq::FindQuery(query_name);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown query '%s'; known:", query_name.c_str());
      for (const vcq::QueryInfo& known : vcq::QueryCatalog())
        std::fprintf(stderr, " %s", known.name.c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
    queries.push_back(info->query);
  } else {
    queries = vcq::TpchQueries();
  }

  const bool need_ssb = !queries.empty() && vcq::IsSsbQuery(queries.front());
  std::printf("Loading %s SF=%.2f ...\n", need_ssb ? "SSB" : "TPC-H", sf);
  vcq::runtime::Database db = need_ssb ? vcq::datagen::GenerateSsb(sf)
                                       : vcq::datagen::GenerateTpch(sf);
  vcq::Session session(db);

  if (!trace_json_path.empty() && !queries.empty()) {
    // One traced Tectorwise run of the first query, exported for
    // chrome://tracing / Perfetto.
    vcq::runtime::QueryOptions opt;
    opt.trace = vcq::runtime::TraceLevel::kSpans;
    opt.threads = std::max(1u, std::thread::hardware_concurrency() / 2);
    const vcq::PreparedQuery prepared =
        session.Prepare(vcq::Engine::kTectorwise, queries.front(), opt);
    const vcq::runtime::QueryResult result = prepared.Execute();
    if (result.trace == nullptr) {
      std::fprintf(stderr, "traced run produced no trace (status=%s)\n",
                   vcq::runtime::StatusName(result.status));
      return 1;
    }
    std::FILE* f = std::fopen(trace_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
      return 1;
    }
    const std::string json = result.trace->ToChromeJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes of chrome-trace JSON (%zu spans) to %s\n",
                json.size(), result.trace->span_count(),
                trace_json_path.c_str());
  }

  for (vcq::Query q : queries) {
    const vcq::QueryInfo& info = vcq::CatalogEntry(q);
    std::printf("\n=== %s — %s ===\n", info.name.c_str(),
                info.description.c_str());

    if (explain) {
      std::printf("%s", vcq::ExplainQuery(db, q).c_str());
      if (!info.params.empty()) {
        std::printf("  parameters:\n");
        for (const vcq::ParamSpec& p : info.params) {
          std::printf("    :%-14s %-7s %s\n", p.name.c_str(),
                      vcq::runtime::ParamTypeName(p.type),
                      p.description.c_str());
        }
      }
    }

    if (analyze) {
      // One traced run per engine through the serving API; the output is
      // the measured plan (rows, ns/tuple per node — api/session.h).
      for (vcq::Engine e : {vcq::Engine::kTyper, vcq::Engine::kTectorwise}) {
        if (!vcq::EngineSupports(e, q)) continue;
        vcq::runtime::QueryOptions opt;
        opt.trace = vcq::runtime::TraceLevel::kSpans;
        std::printf("%s",
                    session.Prepare(e, q, opt).ExplainAnalyze().c_str());
      }
    }

    // Engine comparison, single thread.
    vcq::runtime::QueryOptions st;
    std::printf("  engines (1 thread):\n");
    for (vcq::Engine e : {vcq::Engine::kTyper, vcq::Engine::kTectorwise,
                          vcq::Engine::kVolcano}) {
      if (!vcq::EngineSupports(e, q)) continue;
      std::printf("    %-11s %8.2f ms\n", vcq::EngineName(e),
                  Time(db, e, q, st));
    }

    // Vector-size sweep (Tectorwise, Fig. 5).
    std::printf("  tectorwise vector sizes:\n");
    for (size_t vs : {size_t{1}, size_t{64}, size_t{1024}, size_t{65536}}) {
      vcq::runtime::QueryOptions opt;
      opt.vector_size = vs;
      std::printf("    %-8zu    %8.2f ms\n", vs,
                  Time(db, vcq::Engine::kTectorwise, q, opt));
    }

    // SIMD (Fig. 6/8) and threads (Table 3).
    if (vcq::tectorwise::simd::Available()) {
      vcq::runtime::QueryOptions simd;
      simd.simd = true;
      std::printf("  tectorwise AVX-512:       %8.2f ms\n",
                  Time(db, vcq::Engine::kTectorwise, q, simd));
    }
    vcq::runtime::QueryOptions mt;
    mt.threads = std::max(1u, std::thread::hardware_concurrency() / 2);
    std::printf("  typer x%-2zu threads:        %8.2f ms\n", mt.threads,
                Time(db, vcq::Engine::kTyper, q, mt));
    std::printf("  tectorwise x%-2zu threads:   %8.2f ms\n", mt.threads,
                Time(db, vcq::Engine::kTectorwise, q, mt));
  }
  if (metrics) {
    std::printf("\n=== metrics ===\n%s\n%s",
                vcq::metrics::RenderJson().c_str(),
                vcq::metrics::RenderPrometheus().c_str());
  }
  return 0;
}
